//! The testbed simulator.
//!
//! One run mirrors one §4.3 experiment:
//!
//! 1. the **controller** executes a [`PlacementAlgorithm`] over the
//!    instance (exactly what the paper's local server does);
//! 2. the **replication phase** copies each placed replica from its
//!    dataset's origin VM along the minimum-delay path (timed and
//!    accounted, but — per §2.3 — not charged against query QoS);
//! 3. the **query phase** releases the queries as a Poisson process;
//!    each admitted query's demands contend for node compute (FIFO
//!    queueing per VM), run the real analytics engine over the trace
//!    records, and ship their intermediate results home; the **measured**
//!    response time decides whether the query met its QoS deadline;
//! 4. optionally, datasets **grow** at their origins and the §2.4
//!    consistency rule fires: when new data exceeds the threshold ratio,
//!    an update is pushed to every replica and the traffic is accounted.
//!
//! Queueing is what the static model of `edgerep-core` does not capture:
//! a placement that packs a popular VM admits on paper but misses
//! deadlines here — exactly the gap between `Appro` and `Popularity`
//! in Figs. 7 and 8.

use edgerep_core::{repair, PlacementAlgorithm};
use edgerep_ec as ec;
use edgerep_model::{ComputeNodeId, DatasetId, QueryId, Solution};
use edgerep_obs as obs;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::analytics::{evaluate, merge, AnalyticsResult};
use crate::event::{EventQueue, SimTime};
use crate::fault::{FaultPlan, FaultPlanError};
use crate::slo::SloSample;
use crate::topology::TestbedWorld;
use crate::transfer::{self, ChunkLedger, FlowTier, SourcePath, TransferModel};

/// Retry policy for transfers blocked by a dead source or a partitioned
/// path: capped exponential backoff, then give up (counted, never panic).
const XFER_BACKOFF_BASE_S: f64 = 0.5;
const XFER_BACKOFF_CAP_S: f64 = 30.0;
const XFER_MAX_ATTEMPTS: u32 = 8;

fn backoff_s(attempts: u32) -> f64 {
    (XFER_BACKOFF_BASE_S * 2f64.powi(attempts.min(16) as i32)).min(XFER_BACKOFF_CAP_S)
}

/// §2.4 dynamic-data consistency configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsistencyConfig {
    /// New data accrued at each dataset's origin, GB per simulated hour.
    pub growth_gb_per_hour: f64,
    /// Update threshold: ratio of new to original volume that triggers
    /// replica synchronization.
    pub threshold: f64,
    /// How often origins check the threshold, seconds.
    pub check_interval_s: f64,
}

impl Default for ConsistencyConfig {
    fn default() -> Self {
        Self {
            growth_gb_per_hour: 0.5,
            threshold: 0.1,
            check_interval_s: 60.0,
        }
    }
}

/// A node failure to inject: `node` goes down permanently at `at_s`.
///
/// Failures model VM outages in the leased testbed: demands already
/// running or queued on the node are lost (their queries miss), while
/// queries arriving later **fail over** to another live replica of the
/// demanded dataset when one exists — which is precisely the availability
/// argument the paper makes for `K > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailure {
    /// The compute node that fails.
    pub node: ComputeNodeId,
    /// Failure time in simulated seconds.
    pub at_s: f64,
}

/// Bounded full event-loop trace: every popped event is recorded in a
/// ring buffer, and on a QoS miss (a query completing past its deadline)
/// the buffer is replayed through `edgerep-obs` as `qos_miss.replay`
/// events on the `sim` target — so deadline misses under faults are
/// replayable without paying for unbounded tracing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DebugTraceConfig {
    /// Ring-buffer capacity in events.
    pub capacity: usize,
    /// At most this many misses dump their ring per run.
    pub max_dumps: usize,
}

impl Default for DebugTraceConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            max_dumps: 4,
        }
    }
}

/// Why a testbed run could not start (see
/// [`try_run_testbed_with_plan`]). Mid-run trouble — dead nodes, cut
/// links, lost queries — is *measured*, never an error; only malformed
/// inputs are.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The fault plan failed [`FaultPlan::validate`].
    FaultPlan(FaultPlanError),
    /// The controller's solution failed
    /// [`edgerep_model::Solution::validate`].
    InfeasibleControllerPlan(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::FaultPlan(e) => write!(f, "{e}"),
            SimError::InfeasibleControllerPlan(why) => {
                write!(f, "controller produced an infeasible plan: {why}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<FaultPlanError> for SimError {
    fn from(e: FaultPlanError) -> Self {
        SimError::FaultPlan(e)
    }
}

/// Simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Query arrival rate (Poisson), queries per second.
    pub arrival_rate_per_s: f64,
    /// Serialize result transfers on each node's egress NIC (FIFO). When
    /// off, transfers overlap freely (pure path-delay model).
    pub nic_contention: bool,
    /// Optional dynamic-data consistency behaviour.
    pub consistency: Option<ConsistencyConfig>,
    /// Controller-driven replica repair: when a node dies, orphaned
    /// replicas are re-placed on live feasible nodes (transfers timed
    /// through the sim, NIC-contended, retried with backoff).
    pub repair: bool,
    /// Optional bounded event-loop trace, dumped on QoS misses.
    pub debug_trace: Option<DebugTraceConfig>,
    /// Sample the SLO state (availability, QoS-miss rate, repair
    /// backlog) every this many simulated seconds into
    /// [`TestbedReport::slo_series`]. `None` disables sampling.
    pub slo_sample_interval_s: Option<f64>,
    /// Periodic shard scrubber for erasure-coded datasets: every this
    /// many simulated seconds the controller compares live holder sets
    /// against the plan and schedules Background-tier reconstruction of
    /// lost shards (re-encoded from any `k` survivors, charged `k ×` the
    /// read volume — see [`edgerep_core::repair::scrub`]). `None`
    /// disables scrubbing. Independent of [`SimConfig::repair`], which
    /// reacts to node deaths; the scrubber also catches losses that
    /// repair abandoned or that happened while repair was off.
    pub scrub_interval_s: Option<f64>,
    /// Which data-movement model the run uses: the legacy point-to-point
    /// flows, or the chunked resumable multi-source engine
    /// ([`crate::transfer`]). With the chunked engine,
    /// [`SimConfig::nic_contention`] `false` maps to uncontended
    /// (infinite) NICs in the fluid model.
    pub transfer: TransferModel,
    /// RNG seed for arrivals (placement is deterministic given the world).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            arrival_rate_per_s: 0.4,
            nic_contention: true,
            consistency: None,
            repair: false,
            debug_trace: None,
            slo_sample_interval_s: None,
            scrub_interval_s: None,
            transfer: TransferModel::default(),
            seed: 1,
        }
    }
}

/// Everything one testbed run measures.
#[derive(Debug, Clone)]
pub struct TestbedReport {
    /// Name of the placement algorithm the controller ran.
    pub algorithm: &'static str,
    /// The controller's plan (validated).
    pub plan: Solution,
    /// Volume the controller *planned* to admit, GB.
    pub planned_volume: f64,
    /// Queries the controller planned to admit.
    pub planned_admitted: usize,
    /// Volume of queries that actually met their deadline, GB.
    pub measured_volume: f64,
    /// Queries that actually met their deadline.
    pub measured_admitted: usize,
    /// Total queries issued.
    pub total_queries: usize,
    /// Measured throughput: met / total.
    pub measured_throughput: f64,
    /// Mean measured response time over completed queries, seconds.
    pub mean_response_s: f64,
    /// Median measured response time, seconds.
    pub p50_response_s: f64,
    /// 95th-percentile measured response time, seconds.
    pub p95_response_s: f64,
    /// Worst measured response time, seconds.
    pub max_response_s: f64,
    /// GB moved to materialize replicas (proactive phase).
    pub replication_gb: f64,
    /// Wall-clock of the slowest replica transfer, seconds.
    pub replication_time_s: f64,
    /// GB of consistency updates pushed to replicas (§2.4).
    pub consistency_gb: f64,
    /// Number of consistency synchronization rounds.
    pub consistency_rounds: usize,
    /// Demands redirected to an alternative live replica after a fault.
    pub failovers: usize,
    /// Erasure-coded demands served from a partially-failed shard set
    /// (`min_read ≤ live < placed`): slower, but *not* lost — the
    /// availability edge over losing the only replica.
    pub degraded_reads: usize,
    /// Storage footprint of the controller's plan, GB: one shard
    /// (`|S|/k`) per placed holder under erasure coding, one full copy
    /// under replication.
    pub storage_gb: f64,
    /// Queries lost to faults (no live feasible replica, in flight on a
    /// failing node, or result transfer abandoned after retries).
    pub queries_lost_to_faults: usize,
    /// Repair transfers the controller scheduled after node losses.
    pub repairs_scheduled: usize,
    /// Repair transfers that completed and restored a replica.
    pub repairs_completed: usize,
    /// GB moved by completed repair transfers.
    pub repair_gb: f64,
    /// Repair transfer attempts deferred by backoff (dead source or
    /// partitioned path).
    pub repair_retries: usize,
    /// Query result transfers deferred by backoff (partitioned path).
    pub transfer_retries: usize,
    /// Interrupted chunked transfers that relaunched with verified chunks
    /// intact instead of restarting from zero.
    pub transfer_resumes: usize,
    /// Volume those resumes did **not** re-transfer: GB of already
    /// verified chunks carried across interruptions.
    pub chunk_gb_saved: f64,
    /// Transfers abandoned after retry exhaustion because no live holder
    /// of the data remained.
    pub abandoned_dead_source: usize,
    /// Transfers abandoned after retry exhaustion because every path to
    /// the destination stayed partitioned.
    pub abandoned_partitioned: usize,
    /// Mean wall-clock from a repair job's creation to its replica
    /// landing (across retries, backoff, and resumed chunks), seconds.
    /// `0.0` when no repair completed.
    pub repair_completion_mean_s: f64,
    /// Mean chunked-flow completion time per priority tier
    /// (`[immediate, scheduled, background]`), seconds; all zero under
    /// the point-to-point model.
    pub tier_completion_mean_s: [f64; 3],
    /// Total node-seconds spent down over the run.
    pub node_downtime_s: f64,
    /// Availability under faults: the fraction of planned-admitted
    /// queries not lost to faults (`1.0` when nothing was planned).
    pub availability: f64,
    /// Event-ring dumps triggered by QoS misses (see
    /// [`DebugTraceConfig`]).
    pub qos_miss_dumps: usize,
    /// The replica/assignment state at the end of the run: the plan minus
    /// replicas lost with dead nodes, plus repaired and recovered ones.
    pub live_plan: Solution,
    /// Mean simulated time demands spent queued for compute, seconds
    /// (demands that started immediately contribute zero).
    pub mean_queue_wait_s: f64,
    /// Mean simulated result-transfer time (including NIC serialization
    /// wait), seconds.
    pub mean_transfer_s: f64,
    /// Discrete events processed by the simulator loop.
    pub events_processed: u64,
    /// Largest event-queue depth observed during the run.
    pub peak_event_queue: usize,
    /// Analytics answers produced (one per completed query).
    pub answers: Vec<(QueryId, AnalyticsResult)>,
    /// SLO trajectory sampled every [`SimConfig::slo_sample_interval_s`]
    /// simulated seconds (plus one closing sample at drain); empty when
    /// sampling is off.
    pub slo_series: Vec<SloSample>,
}

#[derive(Debug)]
enum Event {
    Arrival {
        q: QueryId,
    },
    ProcDone {
        q: QueryId,
        demand: usize,
        node: ComputeNodeId,
        /// The node's epoch when the work was scheduled; a mismatch at
        /// delivery means the node died (and possibly recovered) in
        /// between, so the work is void and its compute must not be freed.
        epoch: u32,
    },
    TransferDone {
        q: QueryId,
        demand: usize,
    },
    ConsistencyCheck,
    NodeDown {
        node: ComputeNodeId,
    },
    NodeUp {
        node: ComputeNodeId,
    },
    LinkDown {
        a: ComputeNodeId,
        b: ComputeNodeId,
    },
    LinkUp {
        a: ComputeNodeId,
        b: ComputeNodeId,
    },
    /// A repair transfer (job index into the transfer-job table) landed.
    RepairDone {
        job: usize,
    },
    /// Re-attempt a blocked transfer job after backoff.
    RetryTransfer {
        job: usize,
    },
    /// Wake the chunked transfer engine at its next predicted chunk
    /// completion. Stale generations (the engine settled again since the
    /// push) are no-ops: the engine is advanced before every event anyway.
    FlowProgress {
        generation: u64,
    },
    /// Snapshot SLO state into the report's time series.
    SloSample,
    /// Periodic erasure-coding scrub pass (see
    /// [`SimConfig::scrub_interval_s`]).
    Scrub,
}

/// What a deferred transfer job carries.
#[derive(Debug, Clone, Copy)]
enum XferKind {
    /// A query result headed home (blocked by a partition when created).
    Result { q: QueryId, demand: usize },
    /// A repair copy restoring a replica of `dataset`.
    Repair { dataset: DatasetId },
}

/// One transfer that may need retrying: repair copies always start here;
/// result transfers land here only when their path is partitioned.
#[derive(Debug, Clone, Copy)]
struct XferJob {
    kind: XferKind,
    source: ComputeNodeId,
    dest: ComputeNodeId,
    gb: f64,
    /// Destination epoch at planning time (repairs only): a mismatch
    /// later means the target died and the job is void.
    dest_epoch: u32,
    attempts: u32,
    /// Launched, delivered, or abandoned — no further retries. The
    /// chunked engine keeps jobs unresolved across interruptions until
    /// they complete or are abandoned, so repair planning still sees
    /// parked jobs as reserving their replica slot.
    resolved: bool,
    /// When the job was created (repair completion latency is measured
    /// from here, across every retry and resume).
    born: SimTime,
}

/// Who owns a chunked-engine transfer.
#[derive(Debug, Clone, Copy)]
enum EngineOwner {
    /// Entry in the transfer-job table (result or repair).
    Job(usize),
    /// A §2.4 consistency push: fire-and-forget, no retries.
    Consistency {
        source: ComputeNodeId,
        dest: ComputeNodeId,
    },
    /// An erasure-coded read's shard fan-in from one live co-holder:
    /// fire-and-forget wire traffic (its latency is charged analytically
    /// on the demand's service time), contending with everything else.
    Gather {
        source: ComputeNodeId,
        dest: ComputeNodeId,
    },
}

/// The chunked transfer engine plus the simulator-side bookkeeping that
/// maps engine transfer ids back to jobs.
struct ChunkedState {
    eng: transfer::Engine,
    /// Engine transfer id → owner, parallel to the engine's table.
    jobs: Vec<EngineOwner>,
    /// Last `FlowProgress` generation pushed; a matching generation means
    /// the event is already queued at the right instant.
    last_pushed_gen: u64,
}

/// Builds the [`SourcePath`] for one (source, dest) pair, or `None` when
/// the path is partitioned right now.
fn source_path(
    cloud: &edgerep_model::EdgeCloud,
    fault_plan: &FaultPlan,
    source: ComputeNodeId,
    dest: ComputeNodeId,
    now: SimTime,
) -> Option<SourcePath> {
    let factor = fault_plan.link_factor(source, dest, now.as_secs_f64());
    if factor.is_infinite() {
        return None;
    }
    Some(SourcePath {
        node: source.index(),
        delay_s_per_gb: cloud.min_delay(source, dest),
        factor,
    })
}

/// Every reachable live holder of `dataset` (nearest first), as engine
/// source paths; truncated to the single nearest when multi-source fetch
/// is off.
#[allow(clippy::too_many_arguments)]
fn repair_source_paths(
    inst: &edgerep_model::Instance,
    fault_plan: &FaultPlan,
    live_sol: &Solution,
    alive: &[bool],
    dataset: DatasetId,
    dest: ComputeNodeId,
    now: SimTime,
    multi_source: bool,
) -> Vec<SourcePath> {
    let mut srcs: Vec<SourcePath> = repair::pick_sources(inst, live_sol, alive, dataset, dest)
        .into_iter()
        .filter_map(|s| source_path(inst.cloud(), fault_plan, s, dest, now))
        .collect();
    if !multi_source {
        srcs.truncate(1);
    }
    srcs
}

/// Interrupts an in-flight chunked transfer: the ledger (verified chunks
/// intact unless resume is off) is parked on the job and a retry is
/// scheduled immediately — the retry handler owns backoff and abandonment.
fn park_job(
    ch: &mut ChunkedState,
    now: SimTime,
    tid: usize,
    job: usize,
    job_ledger: &mut [Option<ChunkLedger>],
    job_active: &mut [Option<usize>],
    queue: &mut EventQueue<Event>,
) {
    let mut ledger = ch.eng.cancel(now, tid);
    if !ch.eng.config().resume {
        ledger.reset();
    }
    job_ledger[job] = Some(ledger);
    job_active[job] = None;
    queue.push(now, Event::RetryTransfer { job });
}

/// Re-prices every in-flight chunked flow after a link transition: factors
/// are re-read from the fault plan, freshly partitioned flows are parked
/// (results, repairs) or dropped (consistency pushes), and repair swarms
/// are recomputed over the currently reachable holders.
#[allow(clippy::too_many_arguments)]
fn refresh_link_flows(
    ch: &mut ChunkedState,
    now: SimTime,
    inst: &edgerep_model::Instance,
    fault_plan: &FaultPlan,
    live_sol: &Solution,
    alive: &[bool],
    xfer_jobs: &mut [XferJob],
    job_ledger: &mut [Option<ChunkLedger>],
    job_active: &mut [Option<usize>],
    queue: &mut EventQueue<Event>,
) {
    for tid in 0..ch.jobs.len() {
        if ch.eng.is_done(tid) {
            continue;
        }
        match ch.jobs[tid] {
            EngineOwner::Consistency { source, dest } | EngineOwner::Gather { source, dest } => {
                match source_path(inst.cloud(), fault_plan, source, dest, now) {
                    Some(p) => ch.eng.set_sources(now, tid, &[p]),
                    None => {
                        ch.eng.cancel(now, tid);
                    }
                }
            }
            EngineOwner::Job(job) => {
                let j = xfer_jobs[job];
                match j.kind {
                    XferKind::Result { .. } => {
                        match source_path(inst.cloud(), fault_plan, j.source, j.dest, now) {
                            Some(p) => ch.eng.set_sources(now, tid, &[p]),
                            None => {
                                park_job(ch, now, tid, job, job_ledger, job_active, queue);
                            }
                        }
                    }
                    XferKind::Repair { dataset } => {
                        let srcs = repair_source_paths(
                            inst,
                            fault_plan,
                            live_sol,
                            alive,
                            dataset,
                            j.dest,
                            now,
                            ch.eng.config().multi_source,
                        );
                        if srcs.is_empty() {
                            park_job(ch, now, tid, job, job_ledger, job_active, queue);
                        } else {
                            ch.eng.set_sources(now, tid, &srcs);
                        }
                    }
                }
            }
        }
    }
}

/// Drains engine completions due by `now` (pushing the same
/// `TransferDone` / `RepairDone` events the legacy model uses, at the
/// completion instant) and keeps exactly one fresh `FlowProgress` event
/// queued at the engine's next predicted completion.
#[allow(clippy::too_many_arguments)]
fn pump_engine(
    ch: &mut ChunkedState,
    now: SimTime,
    queue: &mut EventQueue<Event>,
    xfer_jobs: &mut [XferJob],
    job_active: &mut [Option<usize>],
    transfer_durations: &mut Vec<f64>,
    tier_sum_s: &mut [f64; 3],
    tier_count: &mut [u64; 3],
) {
    for tid in ch.eng.advance(now) {
        let dur = now.secs_since(ch.eng.started(tid));
        let ti = ch.eng.tier(tid).index();
        tier_sum_s[ti] += dur;
        tier_count[ti] += 1;
        match ch.jobs[tid] {
            EngineOwner::Job(job) => {
                xfer_jobs[job].resolved = true;
                job_active[job] = None;
                match xfer_jobs[job].kind {
                    XferKind::Result { q, demand } => {
                        transfer_durations.push(dur);
                        queue.push(now, Event::TransferDone { q, demand });
                    }
                    XferKind::Repair { .. } => {
                        queue.push(now, Event::RepairDone { job });
                    }
                }
            }
            EngineOwner::Consistency { .. } | EngineOwner::Gather { .. } => {}
        }
    }
    if let Some((at, generation)) = ch.eng.next_event() {
        if generation != ch.last_pushed_gen {
            ch.last_pushed_gen = generation;
            queue.push(at, Event::FlowProgress { generation });
        }
    }
}

#[derive(Debug, Clone)]
struct QueryRun {
    arrival: SimTime,
    outstanding: usize,
    finish: SimTime,
    partials: Vec<Option<AnalyticsResult>>,
    /// Serving node per demand, with failovers applied.
    nodes: Vec<ComputeNodeId>,
    /// Which demands are still incomplete (no TransferDone yet).
    incomplete: Vec<bool>,
    /// Per-demand erasure-coding read overhead (shard gather + decode),
    /// seconds; all zero for replicated datasets. Charged on top of the
    /// demand's compute time, including when it dequeues after a wait.
    read_extra: Vec<f64>,
}

/// A pending demand waiting for compute at a node.
#[derive(Debug, Clone, Copy)]
struct Waiting {
    q: QueryId,
    demand: usize,
    need_ghz: f64,
    /// When the demand joined the node's FIFO (for queue-wait accounting).
    enqueued: SimTime,
}

/// Runs one full testbed experiment without fault injection.
pub fn run_testbed(
    alg: &dyn PlacementAlgorithm,
    world: &TestbedWorld,
    cfg: &SimConfig,
) -> TestbedReport {
    run_testbed_with_faults(alg, world, cfg, &[])
}

/// Runs one full testbed experiment with injected permanent node
/// failures.
///
/// # Panics
/// Panics on a malformed fault list or an infeasible controller plan —
/// use [`try_run_testbed_with_faults`] to get a [`SimError`] instead.
pub fn run_testbed_with_faults(
    alg: &dyn PlacementAlgorithm,
    world: &TestbedWorld,
    cfg: &SimConfig,
    faults: &[NodeFailure],
) -> TestbedReport {
    try_run_testbed_with_faults(alg, world, cfg, faults).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_testbed_with_faults`] returning malformed inputs as errors
/// instead of aborting.
pub fn try_run_testbed_with_faults(
    alg: &dyn PlacementAlgorithm,
    world: &TestbedWorld,
    cfg: &SimConfig,
    faults: &[NodeFailure],
) -> Result<TestbedReport, SimError> {
    try_run_testbed_with_plan(alg, world, cfg, &FaultPlan::from_failures(faults))
}

/// Runs one full testbed experiment under a [`FaultPlan`]: transient
/// node outages, link degradations and partitions, and — when
/// [`SimConfig::repair`] is set — controller-driven replica repair.
pub fn try_run_testbed_with_plan(
    alg: &dyn PlacementAlgorithm,
    world: &TestbedWorld,
    cfg: &SimConfig,
    fault_plan: &FaultPlan,
) -> Result<TestbedReport, SimError> {
    let inst = &world.instance;
    let cloud = inst.cloud();
    fault_plan.validate(cloud.compute_count())?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let _run_span = obs::span("sim", "sim.run");
    // Per-event tracing is gated once per run; the loop then pays nothing
    // when the `sim` target is disabled.
    let trace_debug = obs::enabled_at("sim", obs::Level::Debug);

    // --- 1. Controller -------------------------------------------------
    let plan = {
        let _controller_span = obs::span("sim", "sim.controller");
        alg.solve(inst)
    };
    plan.validate(inst).map_err(|errs| {
        SimError::InfeasibleControllerPlan(
            errs.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        )
    })?;

    let planned_admitted = plan.admitted_count();

    // --- 2. Replication phase ------------------------------------------
    let mut replication_gb = 0.0;
    let mut replication_time_s: f64 = 0.0;
    for d in inst.dataset_ids() {
        let origin = inst.dataset(d).origin;
        for &v in plan.replicas_of(d) {
            if v == origin {
                continue; // the origin already holds the data
            }
            // One shard per holder: |S|/k under erasure coding, the full
            // dataset (`shard_gb == size`) under replication.
            let gb = inst.shard_gb(d);
            let t = cloud.min_delay(origin, v) * gb;
            replication_gb += gb;
            replication_time_s = replication_time_s.max(t);
        }
    }

    // --- 3. Query phase --------------------------------------------------
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut t = SimTime::ZERO;
    let mut order: Vec<QueryId> = inst.query_ids().collect();
    // Shuffle arrival order (Fisher-Yates) then draw exponential gaps.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for q in order {
        let gap = -rng.gen::<f64>().max(1e-12).ln() / cfg.arrival_rate_per_s;
        t = t.after_secs(gap);
        queue.push(t, Event::Arrival { q });
    }
    let query_horizon = t;
    for o in &fault_plan.node_outages {
        queue.push(
            SimTime::from_secs_f64(o.down_at_s),
            Event::NodeDown { node: o.node },
        );
        if let Some(up) = o.up_at_s {
            queue.push(SimTime::from_secs_f64(up), Event::NodeUp { node: o.node });
        }
    }
    for l in &fault_plan.link_faults {
        queue.push(
            SimTime::from_secs_f64(l.down_at_s),
            Event::LinkDown { a: l.a, b: l.b },
        );
        if let Some(up) = l.up_at_s {
            queue.push(SimTime::from_secs_f64(up), Event::LinkUp { a: l.a, b: l.b });
        }
    }
    if let Some(c) = cfg.consistency {
        queue.push(
            SimTime::from_secs_f64(c.check_interval_s),
            Event::ConsistencyCheck,
        );
    }
    if let Some(interval) = cfg.slo_sample_interval_s {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "slo_sample_interval_s must be positive and finite, got {interval}"
        );
        queue.push(SimTime::from_secs_f64(interval), Event::SloSample);
    }
    if let Some(interval) = cfg.scrub_interval_s {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "scrub_interval_s must be positive and finite, got {interval}"
        );
        queue.push(SimTime::from_secs_f64(interval), Event::Scrub);
    }

    let mut runs: Vec<Option<QueryRun>> = vec![None; inst.queries().len()];
    let mut free_ghz: Vec<f64> = cloud.compute_ids().map(|v| cloud.available(v)).collect();
    let mut waiting: Vec<std::collections::VecDeque<Waiting>> =
        vec![std::collections::VecDeque::new(); cloud.compute_count()];
    let mut completed: Vec<(QueryId, SimTime, SimTime)> = Vec::new(); // (q, arrival, finish)
    let mut answers = Vec::new();
    let mut consistency_gb = 0.0;
    let mut consistency_rounds = 0usize;
    let mut new_data_gb: Vec<f64> = vec![0.0; inst.datasets().len()];
    let mut last_growth = SimTime::ZERO;
    // Fault state. A node is alive iff no outage window covers `now`;
    // overlapping windows nest via `downs_active`. Epochs version a
    // node's lifetime so work scheduled before a death is void after it.
    let mut alive = vec![true; cloud.compute_count()];
    let mut downs_active = vec![0u32; cloud.compute_count()];
    let mut node_epoch = vec![0u32; cloud.compute_count()];
    let mut down_since: Vec<Option<SimTime>> = vec![None; cloud.compute_count()];
    let mut held_at_down: Vec<Vec<DatasetId>> = vec![Vec::new(); cloud.compute_count()];
    let mut node_downtime_s = 0.0;
    // The controller plan as it evolves: replicas leave with dead nodes,
    // return with repairs and recoveries. Failover reads this, so
    // repaired replicas genuinely restore availability.
    let mut live_sol = plan.clone();
    let target_counts: Vec<usize> = inst.dataset_ids().map(|d| plan.replica_count(d)).collect();
    let mut xfer_jobs: Vec<XferJob> = Vec::new();
    // Chunked-engine bookkeeping, parallel to `xfer_jobs`: the parked
    // ledger of an interrupted job (verified chunks waiting to resume)
    // and the job's active engine transfer id, if any.
    let mut job_ledger: Vec<Option<ChunkLedger>> = Vec::new();
    let mut job_active: Vec<Option<usize>> = Vec::new();
    let mut chunked: Option<ChunkedState> = match cfg.transfer {
        TransferModel::PointToPoint => None,
        TransferModel::Chunked(mut c) => {
            if !cfg.nic_contention {
                c.nic_gb_per_s = f64::INFINITY;
            }
            Some(ChunkedState {
                eng: transfer::Engine::new(c, cloud.compute_count()),
                jobs: Vec::new(),
                last_pushed_gen: 0,
            })
        }
    };
    let mut transfer_resumes = 0usize;
    let mut chunk_gb_saved = 0.0;
    let mut abandoned_dead_source = 0usize;
    let mut abandoned_partitioned = 0usize;
    let mut repair_durations: Vec<f64> = Vec::new();
    let mut tier_sum_s = [0.0f64; 3];
    let mut tier_count = [0u64; 3];
    let mut repairs_scheduled = 0usize;
    let mut repairs_completed = 0usize;
    let mut repair_gb = 0.0;
    let mut repair_retries = 0usize;
    let mut transfer_retries = 0usize;
    let mut failovers = 0usize;
    let mut queries_lost = 0usize;
    let mut degraded_reads = 0usize;
    let mut last_event_t = SimTime::ZERO;
    // Bounded event ring for QoS-miss replay (S3): every popped event is
    // recorded; on a miss the ring is dumped through `edgerep-obs`.
    let mut ring: std::collections::VecDeque<(SimTime, &'static str, i64, i64)> =
        std::collections::VecDeque::new();
    let mut qos_miss_dumps = 0usize;
    let mut slo_series: Vec<SloSample> = Vec::new();
    // Per-node NIC: the instant the egress link frees up.
    let mut nic_free_at = vec![SimTime::ZERO; cloud.compute_count()];
    // Background (repair) egress cursor: repairs serialize among
    // themselves and behind foreground traffic, never the other way.
    let mut repair_nic_free_at = vec![SimTime::ZERO; cloud.compute_count()];
    // Loop statistics, tallied in plain integers and flushed to the metric
    // registry once after the drain.
    let mut events_processed: u64 = 0;
    let mut peak_event_queue: usize = 0;
    let mut demands_started: u64 = 0;
    let mut demands_queued: u64 = 0;
    let mut queue_wait_sum_s = 0.0;
    // Result-transfer durations; summed in sorted order at the end so the
    // mean is independent of completion order (the chunked engine records
    // at completion, the legacy model at scheduling).
    let mut transfer_durations: Vec<f64> = Vec::new();

    let start_demand = |now: SimTime,
                        q: QueryId,
                        demand: usize,
                        node: ComputeNodeId,
                        epoch: u32,
                        read_extra_s: f64,
                        free: &mut [f64],
                        waiting: &mut [std::collections::VecDeque<Waiting>],
                        queue: &mut EventQueue<Event>,
                        inst: &edgerep_model::Instance,
                        demands_queued: &mut u64| {
        let need = inst.size(inst.query(q).demands[demand].dataset) * inst.query(q).compute_rate;
        if free[node.index()] + 1e-9 >= need {
            free[node.index()] -= need;
            let proc = cloud.proc_delay(node) * inst.size(inst.query(q).demands[demand].dataset)
                + read_extra_s;
            queue.push(
                now.after_secs(proc),
                Event::ProcDone {
                    q,
                    demand,
                    node,
                    epoch,
                },
            );
        } else {
            *demands_queued += 1;
            waiting[node.index()].push_back(Waiting {
                q,
                demand,
                need_ghz: need,
                enqueued: now,
            });
        }
    };

    // The drain gets its own span so profiles separate event-loop time
    // from the controller's solve (`sim.controller` → solver spans).
    let loop_span = obs::span("sim", "sim.loop");
    while let Some((now, ev)) = queue.pop() {
        events_processed += 1;
        peak_event_queue = peak_event_queue.max(queue.len() + 1);
        last_event_t = now;
        if let Some(tc) = cfg.debug_trace {
            let (kind, a, b): (&'static str, i64, i64) = match &ev {
                Event::Arrival { q } => ("arrival", q.index() as i64, -1),
                Event::ProcDone { q, node, .. } => {
                    ("proc_done", q.index() as i64, node.index() as i64)
                }
                Event::TransferDone { q, demand } => {
                    ("transfer_done", q.index() as i64, *demand as i64)
                }
                Event::ConsistencyCheck => ("consistency_check", -1, -1),
                Event::NodeDown { node } => ("node_down", node.index() as i64, -1),
                Event::NodeUp { node } => ("node_up", node.index() as i64, -1),
                Event::LinkDown { a, b } => ("link_down", a.index() as i64, b.index() as i64),
                Event::LinkUp { a, b } => ("link_up", a.index() as i64, b.index() as i64),
                Event::RepairDone { job } => ("repair_done", *job as i64, -1),
                Event::RetryTransfer { job } => ("retry_transfer", *job as i64, -1),
                Event::FlowProgress { generation } => ("flow_progress", *generation as i64, -1),
                Event::SloSample => ("slo_sample", -1, -1),
                Event::Scrub => ("scrub", -1, -1),
            };
            if ring.len() >= tc.capacity.max(1) {
                ring.pop_front();
            }
            ring.push_back((now, kind, a, b));
        }
        // The chunked engine advances to every event instant first, so
        // completions due *at* `now` land (as `TransferDone` /
        // `RepairDone` pushes) before any same-instant fault touches them.
        if let Some(ch) = chunked.as_mut() {
            pump_engine(
                ch,
                now,
                &mut queue,
                &mut xfer_jobs,
                &mut job_active,
                &mut transfer_durations,
                &mut tier_sum_s,
                &mut tier_count,
            );
        }
        match ev {
            Event::Arrival { q } => {
                let Some(nodes) = plan.assignment_of(q) else {
                    continue; // controller rejected it; counted in totals
                };
                // Resolve dead serving nodes to live replicas (failover).
                // `live_sol` includes repaired replicas, so repair widens
                // the failover choices — the availability payoff.
                let mut resolved = Vec::with_capacity(nodes.len());
                let mut this_failovers = 0usize;
                let mut servable = true;
                for (demand, &node) in nodes.iter().enumerate() {
                    if alive[node.index()] {
                        resolved.push(node);
                        continue;
                    }
                    let d = inst.query(q).demands[demand].dataset;
                    // Load-aware failover: among live replicas that can
                    // still meet the deadline, prefer one with compute
                    // free right now (idle beats close — queueing behind
                    // other work is what actually busts deadlines), then
                    // break ties by delay.
                    let need = inst.size(d) * inst.query(q).compute_rate;
                    let alt = live_sol
                        .replicas_of(d)
                        .iter()
                        .copied()
                        .filter(|v| alive[v.index()])
                        .filter(|&v| {
                            edgerep_model::delay::assignment_delay(inst, q, demand, v)
                                <= inst.query(q).deadline + 1e-12
                        })
                        .min_by(|&a, &b| {
                            let busy = |v: ComputeNodeId| free_ghz[v.index()] + 1e-9 < need;
                            busy(a).cmp(&busy(b)).then(
                                edgerep_model::delay::assignment_delay(inst, q, demand, a)
                                    .partial_cmp(&edgerep_model::delay::assignment_delay(
                                        inst, q, demand, b,
                                    ))
                                    .expect("delays comparable"),
                            )
                        });
                    match alt {
                        Some(v) => {
                            this_failovers += 1;
                            resolved.push(v);
                        }
                        None => {
                            servable = false;
                            break;
                        }
                    }
                }
                if !servable {
                    queries_lost += 1;
                    continue;
                }
                // Erasure-coded demands additionally need a live read
                // quorum: the serving node's shard plus `k − 1` gathered
                // from the nearest live co-holders. Between `k` and
                // `k + m` live shards the read is *degraded* (slower, but
                // served); below `k` the query is lost outright.
                let mut read_extra = vec![0.0f64; resolved.len()];
                let mut gather_launches: Vec<(usize, Vec<ec::ShardSource>)> = Vec::new();
                let mut quorum_ok = true;
                for (demand, &node) in resolved.iter().enumerate() {
                    let d = inst.query(q).demands[demand].dataset;
                    let scheme = inst.scheme(d);
                    if !scheme.needs_decode() {
                        continue;
                    }
                    let others: Vec<ec::ShardSource> = live_sol
                        .replicas_of(d)
                        .iter()
                        .filter(|&&h| alive[h.index()] && h != node)
                        .map(|&h| ec::ShardSource {
                            node: h.index(),
                            delay_s_per_gb: cloud.min_delay(h, node),
                        })
                        .collect();
                    let placed = target_counts[d.index()];
                    match ec::plan_read(scheme, inst.size(d), &others, placed) {
                        Some(plan) => {
                            read_extra[demand] = plan.overhead_s(inst.decode_s_per_gb());
                            if plan.degraded {
                                degraded_reads += 1;
                                ec::note_degraded_read(
                                    now.as_secs_f64(),
                                    d.index(),
                                    1 + others.len(),
                                    placed,
                                    scheme.min_read(),
                                );
                            }
                            if !plan.sources.is_empty() {
                                gather_launches.push((demand, plan.sources));
                            }
                        }
                        None => {
                            quorum_ok = false;
                            break;
                        }
                    }
                }
                if !quorum_ok {
                    queries_lost += 1;
                    continue;
                }
                // The shard fan-in rides the chunked engine when it is
                // on: Immediate-tier flows from each chosen co-holder
                // contend on the wire with everything else. The read's
                // latency itself is charged analytically via
                // `read_extra`, identically under both transfer models.
                if let Some(ch) = chunked.as_mut() {
                    for (demand, sources) in &gather_launches {
                        let d = inst.query(q).demands[*demand].dataset;
                        let dest = resolved[*demand];
                        for s in sources {
                            let src = ComputeNodeId(s.node as u32);
                            let Some(p) = source_path(cloud, fault_plan, src, dest, now) else {
                                continue;
                            };
                            let ledger =
                                ChunkLedger::new(inst.shard_gb(d), ch.eng.config().chunk_gb);
                            let tid = ch.eng.begin(
                                now,
                                dest.index(),
                                FlowTier::Immediate,
                                Some(d.index()),
                                ledger,
                                &[p],
                            );
                            debug_assert_eq!(tid, ch.jobs.len());
                            ch.jobs.push(EngineOwner::Gather { source: src, dest });
                        }
                    }
                    if !gather_launches.is_empty() {
                        pump_engine(
                            ch,
                            now,
                            &mut queue,
                            &mut xfer_jobs,
                            &mut job_active,
                            &mut transfer_durations,
                            &mut tier_sum_s,
                            &mut tier_count,
                        );
                    }
                }
                failovers += this_failovers;
                let n = resolved.len();
                runs[q.index()] = Some(QueryRun {
                    arrival: now,
                    outstanding: n,
                    finish: now,
                    partials: vec![None; n],
                    nodes: resolved.clone(),
                    incomplete: vec![true; n],
                    read_extra: read_extra.clone(),
                });
                demands_started += n as u64;
                for (demand, node) in resolved.into_iter().enumerate() {
                    start_demand(
                        now,
                        q,
                        demand,
                        node,
                        node_epoch[node.index()],
                        read_extra[demand],
                        &mut free_ghz,
                        &mut waiting,
                        &mut queue,
                        inst,
                        &mut demands_queued,
                    );
                }
            }
            Event::ProcDone {
                q,
                demand,
                node,
                epoch,
            } => {
                if node_epoch[node.index()] != epoch {
                    // The node died (and possibly recovered) since this
                    // work was scheduled: the work is lost, and its
                    // compute was re-baselined at recovery — freeing it
                    // here would double-count.
                    continue;
                }
                // Release compute and wake queued demands regardless of
                // whether the owning query is still alive.
                let d = inst.query(q).demands[demand].dataset;
                let need = inst.size(d) * inst.query(q).compute_rate;
                free_ghz[node.index()] += need;
                while let Some(w) = waiting[node.index()].front().copied() {
                    if free_ghz[node.index()] + 1e-9 >= w.need_ghz {
                        waiting[node.index()].pop_front();
                        free_ghz[node.index()] -= w.need_ghz;
                        let wait_s = now.as_secs_f64() - w.enqueued.as_secs_f64();
                        queue_wait_sum_s += wait_s;
                        if trace_debug {
                            obs::emit_debug(
                                "sim",
                                "sim.run",
                                "demand.dequeued",
                                &[
                                    ("query", w.q.index().into()),
                                    ("demand", w.demand.into()),
                                    ("node", node.index().into()),
                                    ("wait_s", wait_s.into()),
                                ],
                            );
                        }
                        // EC gather + decode overhead still applies when
                        // the demand dequeues after a compute wait.
                        let extra_s = runs[w.q.index()]
                            .as_ref()
                            .map_or(0.0, |r| r.read_extra[w.demand]);
                        let proc = cloud.proc_delay(node)
                            * inst.size(inst.query(w.q).demands[w.demand].dataset)
                            + extra_s;
                        queue.push(
                            now.after_secs(proc),
                            Event::ProcDone {
                                q: w.q,
                                demand: w.demand,
                                node,
                                epoch,
                            },
                        );
                    } else {
                        break;
                    }
                }
                // Poisoned queries produce nothing further.
                let Some(run) = runs[q.index()].as_mut() else {
                    continue;
                };
                // Evaluate the analytics for real, then ship the result.
                // Its own span: real computation must not hide inside the
                // event loop's self time in profiles.
                let partial = {
                    let _analytics_span = obs::span("sim", "sim.analytics");
                    evaluate(world.query_kinds[q.index()], &world.records[d.index()])
                };
                run.partials[demand] = Some(partial);
                let query = inst.query(q);
                let result_gb = query.demands[demand].selectivity * inst.size(d);
                let factor = fault_plan.link_factor(node, query.home, now.as_secs_f64());
                if chunked.is_some() || factor.is_infinite() {
                    // Chunked engine: every result becomes a retryable job
                    // and launches through the retry handler (immediately
                    // when the path is up — same simulated instant).
                    // Legacy: only a partitioned result parks here, to
                    // retry with backoff instead of losing the query.
                    let job = xfer_jobs.len();
                    xfer_jobs.push(XferJob {
                        kind: XferKind::Result { q, demand },
                        source: node,
                        dest: query.home,
                        gb: result_gb,
                        dest_epoch: 0,
                        attempts: 0,
                        resolved: false,
                        born: now,
                    });
                    job_ledger.push(None);
                    job_active.push(None);
                    queue.push(now, Event::RetryTransfer { job });
                    continue;
                }
                let trans = cloud.min_delay(node, query.home) * result_gb * factor;
                // Results leaving the same VM serialize on its NIC.
                let start = if cfg.nic_contention {
                    nic_free_at[node.index()].max(now)
                } else {
                    now
                };
                let done = start.after_secs(trans);
                if cfg.nic_contention {
                    nic_free_at[node.index()] = done;
                }
                transfer_durations.push(done.secs_since(now));
                queue.push(done, Event::TransferDone { q, demand });
            }
            Event::TransferDone { q, demand } => {
                let Some(run) = runs[q.index()].as_mut() else {
                    continue; // poisoned by a fault mid-flight
                };
                run.incomplete[demand] = false;
                run.outstanding -= 1;
                run.finish = run.finish.max(now);
                if run.outstanding == 0 {
                    completed.push((q, run.arrival, run.finish));
                    let resp = run.finish.as_secs_f64() - run.arrival.as_secs_f64();
                    if let Some(tc) = cfg.debug_trace {
                        if resp > inst.query(q).deadline + 1e-9 && qos_miss_dumps < tc.max_dumps {
                            qos_miss_dumps += 1;
                            obs::emit(
                                "sim",
                                "sim.run",
                                "qos_miss.replay.begin",
                                &[
                                    ("query", q.index().into()),
                                    ("response_s", resp.into()),
                                    ("deadline_s", inst.query(q).deadline.into()),
                                    ("entries", ring.len().into()),
                                ],
                            );
                            for &(et, kind, a, b) in &ring {
                                obs::emit(
                                    "sim",
                                    "sim.run",
                                    "qos_miss.replay",
                                    &[
                                        ("t_s", et.as_secs_f64().into()),
                                        ("event", kind.into()),
                                        ("a", a.into()),
                                        ("b", b.into()),
                                    ],
                                );
                            }
                        }
                    }
                    if trace_debug {
                        obs::emit_debug(
                            "sim",
                            "sim.run",
                            "query.done",
                            &[
                                ("query", q.index().into()),
                                (
                                    "response_s",
                                    (run.finish.as_secs_f64() - run.arrival.as_secs_f64()).into(),
                                ),
                            ],
                        );
                    }
                    let partials: Vec<AnalyticsResult> =
                        run.partials.iter().flatten().cloned().collect();
                    if let Some(answer) = merge(partials) {
                        answers.push((q, answer));
                    }
                }
            }
            Event::NodeDown { node } => {
                let idx = node.index();
                downs_active[idx] += 1;
                if downs_active[idx] > 1 {
                    continue; // already down (overlapping windows nest)
                }
                alive[idx] = false;
                node_epoch[idx] = node_epoch[idx].wrapping_add(1);
                down_since[idx] = Some(now);
                waiting[idx].clear();
                // Poison every active query with an incomplete demand on
                // the failing node: its in-flight work is gone.
                for run_slot in runs.iter_mut() {
                    let poisoned = run_slot.as_ref().is_some_and(|run| {
                        run.nodes
                            .iter()
                            .zip(run.incomplete.iter())
                            .any(|(&n, &inc)| inc && n == node)
                    });
                    if poisoned {
                        *run_slot = None;
                        queries_lost += 1;
                    }
                }
                // Orphan the node's replicas; remember them so a recovery
                // can bring them back.
                let orphans = live_sol.remove_node_replicas(node);
                if trace_debug {
                    obs::emit_debug(
                        "sim",
                        "sim.run",
                        "node.down",
                        &[("node", idx.into()), ("orphans", orphans.len().into())],
                    );
                }
                held_at_down[idx] = orphans;
                // Sweep the chunked engine: flows touching the dead node
                // react now instead of flying on to a void completion.
                if let Some(ch) = chunked.as_mut() {
                    for tid in 0..ch.jobs.len() {
                        if ch.eng.is_done(tid) {
                            continue;
                        }
                        match ch.jobs[tid] {
                            EngineOwner::Consistency { source, dest }
                            | EngineOwner::Gather { source, dest } => {
                                if source == node || dest == node {
                                    ch.eng.cancel(now, tid);
                                }
                            }
                            EngineOwner::Job(job) => {
                                let j = xfer_jobs[job];
                                match j.kind {
                                    XferKind::Result { q, .. } => {
                                        // Source death poisoned the run
                                        // above; its in-flight bytes die
                                        // with it (legacy semantics).
                                        if runs[q.index()].is_none() {
                                            ch.eng.cancel(now, tid);
                                            xfer_jobs[job].resolved = true;
                                            job_active[job] = None;
                                        }
                                    }
                                    XferKind::Repair { dataset } => {
                                        if j.dest == node {
                                            // Target died: the job is void.
                                            ch.eng.cancel(now, tid);
                                            xfer_jobs[job].resolved = true;
                                            job_active[job] = None;
                                            continue;
                                        }
                                        // The holder set shrank: refresh
                                        // the swarm, or park the verified
                                        // chunks if nobody is reachable.
                                        let srcs = repair_source_paths(
                                            inst,
                                            fault_plan,
                                            &live_sol,
                                            &alive,
                                            dataset,
                                            j.dest,
                                            now,
                                            ch.eng.config().multi_source,
                                        );
                                        if srcs.is_empty() {
                                            park_job(
                                                ch,
                                                now,
                                                tid,
                                                job,
                                                &mut job_ledger,
                                                &mut job_active,
                                                &mut queue,
                                            );
                                        } else {
                                            ch.eng.set_sources(now, tid, &srcs);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    pump_engine(
                        ch,
                        now,
                        &mut queue,
                        &mut xfer_jobs,
                        &mut job_active,
                        &mut transfer_durations,
                        &mut tier_sum_s,
                        &mut tier_count,
                    );
                }
                // Controller repair: re-place orphaned replicas on live
                // feasible nodes, timed as real transfers below.
                if cfg.repair {
                    // Plan against the live state plus every in-flight
                    // repair, so concurrent failures never double-book a
                    // replica slot.
                    let mut planning = live_sol.clone();
                    for j in &xfer_jobs {
                        if let XferKind::Repair { dataset } = j.kind {
                            if !j.resolved && node_epoch[j.dest.index()] == j.dest_epoch {
                                planning.place_replica(dataset, j.dest);
                            }
                        }
                    }
                    for a in repair::plan_replacements(inst, &planning, &alive, &target_counts) {
                        repairs_scheduled += 1;
                        let job = xfer_jobs.len();
                        xfer_jobs.push(XferJob {
                            kind: XferKind::Repair { dataset: a.dataset },
                            source: a.source,
                            dest: a.target,
                            gb: a.gb,
                            dest_epoch: node_epoch[a.target.index()],
                            attempts: 0,
                            resolved: false,
                            born: now,
                        });
                        job_ledger.push(None);
                        job_active.push(None);
                        queue.push(now, Event::RetryTransfer { job });
                    }
                }
            }
            Event::NodeUp { node } => {
                let idx = node.index();
                if downs_active[idx] == 0 {
                    continue; // spurious recovery
                }
                downs_active[idx] -= 1;
                if downs_active[idx] > 0 {
                    continue; // still inside another outage window
                }
                alive[idx] = true;
                // The node returns empty of work: full compute, idle NIC.
                free_ghz[idx] = cloud.available(node);
                nic_free_at[idx] = now;
                repair_nic_free_at[idx] = now;
                if let Some(since) = down_since[idx].take() {
                    node_downtime_s += now.as_secs_f64() - since.as_secs_f64();
                }
                // Its local replicas survive the outage on disk: re-admit
                // them where the dataset is still under budget.
                let held = std::mem::take(&mut held_at_down[idx]);
                for d in held {
                    if live_sol.replica_count(d) < inst.slots(d) && !live_sol.has_replica(d, node) {
                        live_sol.place_replica(d, node);
                    }
                }
                // Recovered replicas widen every repair swarm: refresh the
                // source sets of in-flight chunked repairs.
                if let Some(ch) = chunked.as_mut() {
                    for tid in 0..ch.jobs.len() {
                        if ch.eng.is_done(tid) {
                            continue;
                        }
                        if let EngineOwner::Job(job) = ch.jobs[tid] {
                            if let XferKind::Repair { dataset } = xfer_jobs[job].kind {
                                let srcs = repair_source_paths(
                                    inst,
                                    fault_plan,
                                    &live_sol,
                                    &alive,
                                    dataset,
                                    xfer_jobs[job].dest,
                                    now,
                                    ch.eng.config().multi_source,
                                );
                                if !srcs.is_empty() {
                                    ch.eng.set_sources(now, tid, &srcs);
                                }
                            }
                        }
                    }
                    pump_engine(
                        ch,
                        now,
                        &mut queue,
                        &mut xfer_jobs,
                        &mut job_active,
                        &mut transfer_durations,
                        &mut tier_sum_s,
                        &mut tier_count,
                    );
                }
                if trace_debug {
                    obs::emit_debug("sim", "sim.run", "node.up", &[("node", idx.into())]);
                }
            }
            Event::LinkDown { a, b } => {
                // Legacy timing effects come from `FaultPlan::link_factor`
                // lookups at transfer-scheduling time; the chunked engine
                // additionally re-prices (or parks) in-flight flows here.
                if let Some(ch) = chunked.as_mut() {
                    refresh_link_flows(
                        ch,
                        now,
                        inst,
                        fault_plan,
                        &live_sol,
                        &alive,
                        &mut xfer_jobs,
                        &mut job_ledger,
                        &mut job_active,
                        &mut queue,
                    );
                    pump_engine(
                        ch,
                        now,
                        &mut queue,
                        &mut xfer_jobs,
                        &mut job_active,
                        &mut transfer_durations,
                        &mut tier_sum_s,
                        &mut tier_count,
                    );
                }
                if trace_debug {
                    obs::emit_debug(
                        "sim",
                        "sim.run",
                        "link.down",
                        &[("a", a.index().into()), ("b", b.index().into())],
                    );
                }
            }
            Event::LinkUp { a, b } => {
                if let Some(ch) = chunked.as_mut() {
                    refresh_link_flows(
                        ch,
                        now,
                        inst,
                        fault_plan,
                        &live_sol,
                        &alive,
                        &mut xfer_jobs,
                        &mut job_ledger,
                        &mut job_active,
                        &mut queue,
                    );
                    pump_engine(
                        ch,
                        now,
                        &mut queue,
                        &mut xfer_jobs,
                        &mut job_active,
                        &mut transfer_durations,
                        &mut tier_sum_s,
                        &mut tier_count,
                    );
                }
                if trace_debug {
                    obs::emit_debug(
                        "sim",
                        "sim.run",
                        "link.up",
                        &[("a", a.index().into()), ("b", b.index().into())],
                    );
                }
            }
            Event::RepairDone { job } => {
                let j = xfer_jobs[job];
                let XferKind::Repair { dataset } = j.kind else {
                    continue;
                };
                // Valid only if the target survived since launch and the
                // dataset still wants the replica.
                if node_epoch[j.dest.index()] == j.dest_epoch
                    && live_sol.replica_count(dataset) < inst.slots(dataset)
                    && !live_sol.has_replica(dataset, j.dest)
                {
                    live_sol.place_replica(dataset, j.dest);
                    repairs_completed += 1;
                    repair_gb += j.gb;
                    repair_durations.push(now.secs_since(j.born));
                    if trace_debug {
                        obs::emit_debug(
                            "sim",
                            "sim.run",
                            "repair.done",
                            &[
                                ("dataset", dataset.index().into()),
                                ("node", j.dest.index().into()),
                            ],
                        );
                    }
                }
            }
            Event::RetryTransfer { job } => {
                let j = xfer_jobs[job];
                if j.resolved {
                    continue;
                }
                if let Some(ch) = chunked.as_mut() {
                    if job_active[job].is_some() {
                        continue; // already relaunched by an earlier event
                    }
                    match j.kind {
                        XferKind::Result { q, .. } => {
                            if runs[q.index()].is_none() {
                                xfer_jobs[job].resolved = true; // poisoned
                                continue;
                            }
                            let Some(path) =
                                source_path(cloud, fault_plan, j.source, j.dest, now)
                            else {
                                if j.attempts >= XFER_MAX_ATTEMPTS {
                                    xfer_jobs[job].resolved = true;
                                    runs[q.index()] = None;
                                    queries_lost += 1;
                                    abandoned_partitioned += 1;
                                    obs::emit(
                                        "sim",
                                        "sim.run",
                                        "transfer.abandoned",
                                        &[
                                            ("kind", "result".into()),
                                            ("reason", "partitioned".into()),
                                            ("job", job.into()),
                                            ("attempts", (j.attempts as usize).into()),
                                        ],
                                    );
                                } else {
                                    xfer_jobs[job].attempts += 1;
                                    transfer_retries += 1;
                                    queue.push(
                                        now.after_secs(backoff_s(j.attempts)),
                                        Event::RetryTransfer { job },
                                    );
                                }
                                continue;
                            };
                            let ledger = job_ledger[job].take().unwrap_or_else(|| {
                                ChunkLedger::new(j.gb, ch.eng.config().chunk_gb)
                            });
                            if ledger.verified_count() > 0 {
                                transfer_resumes += 1;
                                chunk_gb_saved += ledger.verified_gb();
                                obs::emit(
                                    "sim",
                                    "sim.run",
                                    "transfer.resume",
                                    &[
                                        ("kind", "result".into()),
                                        ("job", job.into()),
                                        ("verified_gb", ledger.verified_gb().into()),
                                        ("missing_gb", ledger.missing_gb().into()),
                                    ],
                                );
                            }
                            let tid = ch.eng.begin(
                                now,
                                j.dest.index(),
                                FlowTier::Immediate,
                                None,
                                ledger,
                                &[path],
                            );
                            debug_assert_eq!(tid, ch.jobs.len());
                            ch.jobs.push(EngineOwner::Job(job));
                            job_active[job] = Some(tid);
                        }
                        XferKind::Repair { dataset } => {
                            if node_epoch[j.dest.index()] != j.dest_epoch {
                                xfer_jobs[job].resolved = true; // target died
                                continue;
                            }
                            let holders =
                                repair::pick_sources(inst, &live_sol, &alive, dataset, j.dest);
                            let mut srcs: Vec<SourcePath> = holders
                                .iter()
                                .filter_map(|&s| source_path(cloud, fault_plan, s, j.dest, now))
                                .collect();
                            if !ch.eng.config().multi_source {
                                srcs.truncate(1);
                            }
                            if srcs.is_empty() {
                                // No live holder at all, or holders exist
                                // but every path is partitioned.
                                let reason = if holders.is_empty() {
                                    "dead-source"
                                } else {
                                    "partitioned"
                                };
                                if j.attempts >= XFER_MAX_ATTEMPTS {
                                    xfer_jobs[job].resolved = true; // abandoned
                                    if holders.is_empty() {
                                        abandoned_dead_source += 1;
                                    } else {
                                        abandoned_partitioned += 1;
                                    }
                                    obs::emit(
                                        "sim",
                                        "sim.run",
                                        "transfer.abandoned",
                                        &[
                                            ("kind", "repair".into()),
                                            ("reason", reason.into()),
                                            ("job", job.into()),
                                            ("attempts", (j.attempts as usize).into()),
                                        ],
                                    );
                                } else {
                                    xfer_jobs[job].attempts += 1;
                                    repair_retries += 1;
                                    queue.push(
                                        now.after_secs(backoff_s(j.attempts)),
                                        Event::RetryTransfer { job },
                                    );
                                }
                                continue;
                            }
                            xfer_jobs[job].source = ComputeNodeId(srcs[0].node as u32);
                            let ledger = job_ledger[job].take().unwrap_or_else(|| {
                                ChunkLedger::new(j.gb, ch.eng.config().chunk_gb)
                            });
                            if ledger.verified_count() > 0 {
                                transfer_resumes += 1;
                                chunk_gb_saved += ledger.verified_gb();
                                obs::emit(
                                    "sim",
                                    "sim.run",
                                    "transfer.resume",
                                    &[
                                        ("kind", "repair".into()),
                                        ("job", job.into()),
                                        ("verified_gb", ledger.verified_gb().into()),
                                        ("missing_gb", ledger.missing_gb().into()),
                                    ],
                                );
                            }
                            let tid = ch.eng.begin(
                                now,
                                j.dest.index(),
                                FlowTier::Background,
                                Some(dataset.index()),
                                ledger,
                                &srcs,
                            );
                            debug_assert_eq!(tid, ch.jobs.len());
                            ch.jobs.push(EngineOwner::Job(job));
                            job_active[job] = Some(tid);
                        }
                    }
                    pump_engine(
                        ch,
                        now,
                        &mut queue,
                        &mut xfer_jobs,
                        &mut job_active,
                        &mut transfer_durations,
                        &mut tier_sum_s,
                        &mut tier_count,
                    );
                    continue;
                }
                match j.kind {
                    XferKind::Result { q, demand } => {
                        if runs[q.index()].is_none() {
                            xfer_jobs[job].resolved = true; // poisoned meanwhile
                            continue;
                        }
                        // A dead source would have poisoned the run above;
                        // only the path matters here.
                        let factor = fault_plan.link_factor(j.source, j.dest, now.as_secs_f64());
                        if factor.is_infinite() {
                            if j.attempts >= XFER_MAX_ATTEMPTS {
                                // Degrade gracefully: the result never got
                                // home; the query is lost, not the run.
                                xfer_jobs[job].resolved = true;
                                runs[q.index()] = None;
                                queries_lost += 1;
                                abandoned_partitioned += 1;
                                obs::emit(
                                    "sim",
                                    "sim.run",
                                    "transfer.abandoned",
                                    &[
                                        ("kind", "result".into()),
                                        ("reason", "partitioned".into()),
                                        ("job", job.into()),
                                        ("attempts", (j.attempts as usize).into()),
                                    ],
                                );
                            } else {
                                xfer_jobs[job].attempts += 1;
                                transfer_retries += 1;
                                queue.push(
                                    now.after_secs(backoff_s(j.attempts)),
                                    Event::RetryTransfer { job },
                                );
                            }
                            continue;
                        }
                        let trans = cloud.min_delay(j.source, j.dest) * j.gb * factor;
                        let start = if cfg.nic_contention {
                            nic_free_at[j.source.index()].max(now)
                        } else {
                            now
                        };
                        let done = start.after_secs(trans);
                        if cfg.nic_contention {
                            nic_free_at[j.source.index()] = done;
                        }
                        transfer_durations.push(done.secs_since(now));
                        xfer_jobs[job].resolved = true;
                        queue.push(done, Event::TransferDone { q, demand });
                    }
                    XferKind::Repair { dataset } => {
                        if node_epoch[j.dest.index()] != j.dest_epoch {
                            xfer_jobs[job].resolved = true; // target died
                            continue;
                        }
                        // The planned source may have died since; re-pick
                        // from the current live holders.
                        let mut source = j.source;
                        if !alive[source.index()] {
                            if let Some(s) =
                                repair::pick_source(inst, &live_sol, &alive, dataset, j.dest)
                            {
                                source = s;
                                xfer_jobs[job].source = s;
                            }
                        }
                        let factor = fault_plan.link_factor(source, j.dest, now.as_secs_f64());
                        if !alive[source.index()] || factor.is_infinite() {
                            if j.attempts >= XFER_MAX_ATTEMPTS {
                                xfer_jobs[job].resolved = true; // abandoned
                                let reason = if !alive[source.index()] {
                                    abandoned_dead_source += 1;
                                    "dead-source"
                                } else {
                                    abandoned_partitioned += 1;
                                    "partitioned"
                                };
                                obs::emit(
                                    "sim",
                                    "sim.run",
                                    "transfer.abandoned",
                                    &[
                                        ("kind", "repair".into()),
                                        ("reason", reason.into()),
                                        ("job", job.into()),
                                        ("attempts", (j.attempts as usize).into()),
                                    ],
                                );
                            } else {
                                xfer_jobs[job].attempts += 1;
                                repair_retries += 1;
                                queue.push(
                                    now.after_secs(backoff_s(j.attempts)),
                                    Event::RetryTransfer { job },
                                );
                            }
                            continue;
                        }
                        let trans = cloud.min_delay(source, j.dest) * j.gb * factor;
                        // Repair bytes are preemptible background traffic:
                        // they queue behind both foreground result egress
                        // and earlier repairs from the same source, but
                        // foreground traffic never queues behind them —
                        // QoS-bearing results preempt replication streams.
                        let start = if cfg.nic_contention {
                            nic_free_at[source.index()]
                                .max(repair_nic_free_at[source.index()])
                                .max(now)
                        } else {
                            now
                        };
                        let done = start.after_secs(trans);
                        if cfg.nic_contention {
                            repair_nic_free_at[source.index()] = done;
                        }
                        xfer_jobs[job].resolved = true;
                        queue.push(done, Event::RepairDone { job });
                    }
                }
            }
            Event::ConsistencyCheck => {
                let c = cfg.consistency.expect("check scheduled only with config");
                // Accrue growth since the last check.
                let dt_h = (now.as_secs_f64() - last_growth.as_secs_f64()) / 3600.0;
                last_growth = now;
                for g in &mut new_data_gb {
                    *g += c.growth_gb_per_hour * dt_h;
                }
                // Push updates where the threshold is crossed.
                for d in inst.dataset_ids() {
                    let original = inst.size(d);
                    if new_data_gb[d.index()] / original >= c.threshold {
                        let replicas = plan.replicas_of(d);
                        let origin = inst.dataset(d).origin;
                        let synced = replicas.iter().filter(|&&v| v != origin).count();
                        if synced > 0 {
                            consistency_gb += new_data_gb[d.index()] * synced as f64;
                            consistency_rounds += 1;
                            // The chunked engine carries the update push as
                            // real Scheduled-tier flows, so consistency
                            // traffic contends with (and yields to) result
                            // transfers; accounting above stays identical.
                            if let Some(ch) = chunked.as_mut() {
                                let gb = new_data_gb[d.index()];
                                if gb > 0.0 && alive[origin.index()] {
                                    for &v in replicas {
                                        if v == origin || !alive[v.index()] {
                                            continue;
                                        }
                                        let Some(p) =
                                            source_path(cloud, fault_plan, origin, v, now)
                                        else {
                                            continue;
                                        };
                                        let ledger =
                                            ChunkLedger::new(gb, ch.eng.config().chunk_gb);
                                        let tid = ch.eng.begin(
                                            now,
                                            v.index(),
                                            FlowTier::Scheduled,
                                            None,
                                            ledger,
                                            &[p],
                                        );
                                        debug_assert_eq!(tid, ch.jobs.len());
                                        ch.jobs.push(EngineOwner::Consistency {
                                            source: origin,
                                            dest: v,
                                        });
                                    }
                                }
                            }
                            if trace_debug {
                                obs::emit_debug(
                                    "sim",
                                    "sim.run",
                                    "consistency.sync",
                                    &[
                                        ("dataset", d.index().into()),
                                        ("replicas_synced", synced.into()),
                                        ("gb", (new_data_gb[d.index()] * synced as f64).into()),
                                    ],
                                );
                            }
                        }
                        new_data_gb[d.index()] = 0.0;
                    }
                }
                if let Some(ch) = chunked.as_mut() {
                    pump_engine(
                        ch,
                        now,
                        &mut queue,
                        &mut xfer_jobs,
                        &mut job_active,
                        &mut transfer_durations,
                        &mut tier_sum_s,
                        &mut tier_count,
                    );
                }
                // Keep checking until the query phase has drained.
                let next = now.after_secs(c.check_interval_s);
                if now <= query_horizon {
                    queue.push(next, Event::ConsistencyCheck);
                }
            }
            Event::FlowProgress { .. } => {
                // The pre-match pump above already advanced the engine to
                // `now`, fired due chunk completions, and re-armed the
                // next wake-up; stale generations needed nothing anyway.
            }
            Event::Scrub => {
                let interval = cfg
                    .scrub_interval_s
                    .expect("scrub scheduled only with config");
                // Plan against the live state plus every in-flight
                // repair, so the scrubber never double-books a shard
                // slot the death-triggered repair path already claimed.
                let mut planning = live_sol.clone();
                for j in &xfer_jobs {
                    if let XferKind::Repair { dataset } = j.kind {
                        if !j.resolved && node_epoch[j.dest.index()] == j.dest_epoch {
                            planning.place_replica(dataset, j.dest);
                        }
                    }
                }
                let (actions, _outcome) =
                    repair::scrub(now.as_secs_f64(), inst, &planning, &alive, &target_counts);
                for a in actions {
                    repairs_scheduled += 1;
                    let job = xfer_jobs.len();
                    xfer_jobs.push(XferJob {
                        kind: XferKind::Repair { dataset: a.dataset },
                        source: a.source,
                        dest: a.target,
                        gb: a.gb,
                        dest_epoch: node_epoch[a.target.index()],
                        attempts: 0,
                        resolved: false,
                        born: now,
                    });
                    job_ledger.push(None);
                    job_active.push(None);
                    queue.push(now, Event::RetryTransfer { job });
                }
                // Keep scrubbing until the query phase has drained.
                if now <= query_horizon {
                    queue.push(now.after_secs(interval), Event::Scrub);
                }
            }
            Event::SloSample => {
                let interval = cfg
                    .slo_sample_interval_s
                    .expect("sample scheduled only with config");
                slo_series.push(snapshot_slo(
                    now.as_secs_f64(),
                    inst,
                    &completed,
                    queries_lost,
                    planned_admitted,
                    repairs_scheduled,
                    repairs_completed,
                    replication_gb + repair_gb,
                ));
                // Keep sampling until the query phase has drained.
                if now <= query_horizon {
                    queue.push(now.after_secs(interval), Event::SloSample);
                }
            }
        }
    }
    drop(loop_span);
    if cfg.slo_sample_interval_s.is_some() {
        // Close the series at drain time so the final state is always a
        // row even when the run is shorter than one interval.
        slo_series.push(snapshot_slo(
            last_event_t.as_secs_f64(),
            inst,
            &completed,
            queries_lost,
            planned_admitted,
            repairs_scheduled,
            repairs_completed,
            replication_gb + repair_gb,
        ));
    }

    // --- 4. Report -------------------------------------------------------
    // Nodes still down when the sim drains accrue downtime to the end.
    for since in down_since.iter_mut() {
        if let Some(t0) = since.take() {
            node_downtime_s += last_event_t.as_secs_f64() - t0.as_secs_f64();
        }
    }
    let mut measured_volume = 0.0;
    let mut measured_admitted = 0usize;
    let mut response_sum = 0.0;
    let mut response_max: f64 = 0.0;
    let mut responses = Vec::with_capacity(completed.len());
    for &(q, arrival, finish) in &completed {
        let resp = finish.as_secs_f64() - arrival.as_secs_f64();
        response_sum += resp;
        response_max = response_max.max(resp);
        responses.push(resp);
        if resp <= inst.query(q).deadline + 1e-9 {
            measured_admitted += 1;
            measured_volume += inst.demanded_volume(q);
        }
    }
    responses.sort_by(|a, b| a.partial_cmp(b).expect("finite responses"));
    let percentile = |p: f64| -> f64 {
        if responses.is_empty() {
            0.0
        } else {
            let idx = ((responses.len() as f64 - 1.0) * p).round() as usize;
            responses[idx]
        }
    };
    let planned_volume = plan.admitted_volume(inst);
    let mean_queue_wait_s = if demands_started == 0 {
        0.0
    } else {
        queue_wait_sum_s / demands_started as f64
    };
    // Sorted-order sums: the mean depends only on the multiset of
    // durations, never on completion order.
    let sorted_mean = |mut v: Vec<f64>| -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
        let n = v.len() as f64;
        v.into_iter().sum::<f64>() / n
    };
    let mean_transfer_s = sorted_mean(transfer_durations);
    let repair_completion_mean_s = sorted_mean(repair_durations);
    let tier_completion_mean_s = [
        if tier_count[0] == 0 { 0.0 } else { tier_sum_s[0] / tier_count[0] as f64 },
        if tier_count[1] == 0 { 0.0 } else { tier_sum_s[1] / tier_count[1] as f64 },
        if tier_count[2] == 0 { 0.0 } else { tier_sum_s[2] / tier_count[2] as f64 },
    ];
    let availability = if planned_admitted == 0 {
        1.0
    } else {
        (1.0 - queries_lost as f64 / planned_admitted as f64).max(0.0)
    };
    obs::counter("sim.events").add(events_processed);
    obs::counter("sim.demands").add(demands_started);
    obs::counter("sim.demands_queued").add(demands_queued);
    obs::counter("sim.failovers").add(failovers as u64);
    obs::counter("sim.queries_lost").add(queries_lost as u64);
    obs::counter("sim.repairs_scheduled").add(repairs_scheduled as u64);
    obs::counter("sim.repairs_completed").add(repairs_completed as u64);
    obs::counter("sim.repair_retries").add(repair_retries as u64);
    obs::counter("sim.transfer_retries").add(transfer_retries as u64);
    obs::counter("sim.transfer_resumes").add(transfer_resumes as u64);
    obs::counter("sim.transfers_abandoned")
        .add((abandoned_dead_source + abandoned_partitioned) as u64);
    obs::gauge("sim.peak_event_queue").set_max(peak_event_queue as f64);
    obs::gauge("sim.node_downtime_s").set_max(node_downtime_s);
    obs::emit(
        "sim",
        "sim.run",
        "sim.summary",
        &[
            ("algorithm", alg.name().into()),
            ("events", events_processed.into()),
            ("peak_event_queue", peak_event_queue.into()),
            ("demands", demands_started.into()),
            ("demands_queued", demands_queued.into()),
            ("mean_queue_wait_s", mean_queue_wait_s.into()),
            ("mean_transfer_s", mean_transfer_s.into()),
            ("consistency_gb", consistency_gb.into()),
            ("consistency_rounds", consistency_rounds.into()),
            ("measured_admitted", measured_admitted.into()),
            ("failovers", failovers.into()),
            ("degraded_reads", degraded_reads.into()),
            ("storage_gb", plan.storage_gb(inst).into()),
            ("queries_lost", queries_lost.into()),
            ("repairs_scheduled", repairs_scheduled.into()),
            ("repairs_completed", repairs_completed.into()),
            ("transfer_resumes", transfer_resumes.into()),
            ("chunk_gb_saved", chunk_gb_saved.into()),
            ("abandoned_dead_source", abandoned_dead_source.into()),
            ("abandoned_partitioned", abandoned_partitioned.into()),
            ("availability", availability.into()),
        ],
    );
    Ok(TestbedReport {
        algorithm: alg.name(),
        planned_volume,
        planned_admitted,
        measured_volume,
        measured_admitted,
        total_queries: inst.queries().len(),
        measured_throughput: if inst.queries().is_empty() {
            0.0
        } else {
            measured_admitted as f64 / inst.queries().len() as f64
        },
        mean_response_s: if completed.is_empty() {
            0.0
        } else {
            response_sum / completed.len() as f64
        },
        p50_response_s: percentile(0.5),
        p95_response_s: percentile(0.95),
        max_response_s: response_max,
        replication_gb,
        replication_time_s,
        consistency_gb,
        consistency_rounds,
        failovers,
        degraded_reads,
        storage_gb: plan.storage_gb(inst),
        queries_lost_to_faults: queries_lost,
        repairs_scheduled,
        repairs_completed,
        repair_gb,
        repair_retries,
        transfer_retries,
        transfer_resumes,
        chunk_gb_saved,
        abandoned_dead_source,
        abandoned_partitioned,
        repair_completion_mean_s,
        tier_completion_mean_s,
        node_downtime_s,
        availability,
        qos_miss_dumps,
        live_plan: live_sol,
        mean_queue_wait_s,
        mean_transfer_s,
        events_processed,
        peak_event_queue,
        answers,
        slo_series,
        plan,
    })
}

/// Snapshot of SLO state mid-run (see [`SimConfig::slo_sample_interval_s`]).
#[allow(clippy::too_many_arguments)]
fn snapshot_slo(
    t_s: f64,
    inst: &edgerep_model::Instance,
    completed: &[(QueryId, SimTime, SimTime)],
    queries_lost: usize,
    planned_admitted: usize,
    repairs_scheduled: usize,
    repairs_completed: usize,
    prefetch_gb: f64,
) -> SloSample {
    let misses = completed
        .iter()
        .filter(|&&(q, arrival, finish)| {
            finish.as_secs_f64() - arrival.as_secs_f64() > inst.query(q).deadline + 1e-9
        })
        .count();
    SloSample {
        t_s,
        availability: if planned_admitted == 0 {
            1.0
        } else {
            (1.0 - queries_lost as f64 / planned_admitted as f64).max(0.0)
        },
        qos_miss_rate: if completed.is_empty() {
            0.0
        } else {
            misses as f64 / completed.len() as f64
        },
        repair_backlog: repairs_scheduled.saturating_sub(repairs_completed),
        prefetch_gb,
        forecast_wmape: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_testbed_instance, TestbedConfig};
    use edgerep_core::appro::{ApproG, ApproS};
    use edgerep_core::popularity::Popularity;

    fn small_world(f: usize, k: usize) -> TestbedWorld {
        let cfg = TestbedConfig {
            trace: edgerep_workload::mobile_trace::TraceConfig {
                users: 200,
                apps: 30,
                days: 10,
                ..Default::default()
            },
            windows: 6,
            query_count: 20,
            ..Default::default()
        }
        .with_max_datasets_per_query(f)
        .with_max_replicas(k);
        build_testbed_instance(&cfg, 11)
    }

    #[test]
    fn run_produces_consistent_accounting() {
        let world = small_world(2, 3);
        let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        assert_eq!(report.total_queries, 20);
        assert!(report.measured_admitted <= report.planned_admitted);
        assert!(report.p50_response_s <= report.p95_response_s);
        assert!(report.p95_response_s <= report.max_response_s + 1e-12);
        assert!(report.p50_response_s >= 0.0);
        assert!(report.measured_volume <= report.planned_volume + 1e-9);
        assert!(report.measured_throughput <= 1.0);
        assert!(report.replication_gb >= 0.0);
        assert!(report.events_processed > 0);
        assert!(report.peak_event_queue >= 1);
        assert!(report.mean_queue_wait_s >= 0.0);
        assert!(report.mean_transfer_s >= 0.0);
        // Every completed query got an answer.
        assert_eq!(
            report.answers.len(),
            report.plan.admitted_count(),
            "all planned-admitted queries complete eventually"
        );
    }

    #[test]
    fn slo_sampling_produces_a_monotone_series() {
        let world = small_world(2, 3);
        let cfg = SimConfig {
            slo_sample_interval_s: Some(5.0),
            ..Default::default()
        };
        let report = run_testbed(&ApproG::default(), &world, &cfg);
        assert!(!report.slo_series.is_empty(), "sampling on → rows");
        for pair in report.slo_series.windows(2) {
            assert!(pair[0].t_s <= pair[1].t_s, "t_s must be monotone");
        }
        for s in &report.slo_series {
            assert!((0.0..=1.0).contains(&s.availability), "{s:?}");
            assert!((0.0..=1.0).contains(&s.qos_miss_rate), "{s:?}");
            assert!(s.prefetch_gb >= 0.0, "{s:?}");
            assert_eq!(s.forecast_wmape, None, "plain sim has no forecaster");
        }
        // The closing sample reflects the final report state.
        let last = report.slo_series.last().unwrap();
        assert!((last.availability - report.availability).abs() < 1e-9);
        // Sampling must not perturb the simulation itself.
        let plain = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        assert_eq!(plain.measured_admitted, report.measured_admitted);
        assert_eq!(plain.measured_volume, report.measured_volume);
    }

    #[test]
    fn deterministic_given_seeds() {
        let world = small_world(2, 3);
        let a = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        let b = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        assert_eq!(a.measured_admitted, b.measured_admitted);
        assert_eq!(a.measured_volume, b.measured_volume);
        assert_eq!(a.mean_response_s, b.mean_response_s);
    }

    #[test]
    fn appro_beats_popularity_on_the_testbed() {
        // The Fig. 7/8 headline, at one configuration point.
        let world = small_world(3, 2);
        let appro = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        let pop = run_testbed(&Popularity::general(), &world, &SimConfig::default());
        assert!(
            appro.measured_volume >= pop.measured_volume,
            "appro {} < popularity {}",
            appro.measured_volume,
            pop.measured_volume
        );
    }

    #[test]
    fn single_dataset_world_runs_with_appro_s() {
        let world = small_world(1, 3);
        let report = run_testbed(&ApproS::default(), &world, &SimConfig::default());
        assert!(report.measured_admitted <= report.total_queries);
    }

    #[test]
    fn consistency_updates_account_traffic() {
        let world = small_world(2, 3);
        let cfg = SimConfig {
            arrival_rate_per_s: 0.05, // long horizon: many check intervals
            consistency: Some(ConsistencyConfig {
                growth_gb_per_hour: 100.0, // aggressive growth
                threshold: 0.05,
                check_interval_s: 10.0,
            }),
            seed: 3,
            ..Default::default()
        };
        let report = run_testbed(&ApproG::default(), &world, &cfg);
        assert!(
            report.consistency_rounds > 0,
            "aggressive growth must trigger synchronization"
        );
        assert!(report.consistency_gb > 0.0);
    }

    #[test]
    fn no_consistency_config_no_traffic() {
        let world = small_world(2, 3);
        let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        assert_eq!(report.consistency_rounds, 0);
        assert_eq!(report.consistency_gb, 0.0);
    }

    #[test]
    fn rejected_queries_never_execute() {
        let world = small_world(4, 1); // tight K: rejections guaranteed
        let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        let planned = report.planned_admitted;
        assert!(
            planned < report.total_queries,
            "need rejections for this test"
        );
        assert!(report.answers.len() <= planned);
    }

    #[test]
    fn nic_contention_only_slows_things_down() {
        let world = small_world(3, 3);
        let storm = SimConfig {
            arrival_rate_per_s: 50.0, // heavy overlap: NICs matter
            ..Default::default()
        };
        let free = SimConfig {
            nic_contention: false,
            ..storm
        };
        let with_nic = run_testbed(&ApproG::default(), &world, &storm);
        let without = run_testbed(&ApproG::default(), &world, &free);
        assert!(
            with_nic.mean_response_s >= without.mean_response_s - 1e-9,
            "serialized NICs cannot be faster ({} vs {})",
            with_nic.mean_response_s,
            without.mean_response_s
        );
        assert!(with_nic.measured_admitted <= without.measured_admitted);
    }

    #[test]
    fn chunked_without_faults_is_byte_identical_to_p2p() {
        // With no faults and uncontended NICs the chunked engine coalesces
        // every transfer into a single flow priced by the same
        // `(delay/GB * GB) * factor` product the point-to-point model
        // uses, so every completion lands on the same microsecond and the
        // two reports agree bit for bit.
        let world = small_world(2, 3);
        let base = SimConfig {
            nic_contention: false,
            consistency: Some(ConsistencyConfig {
                growth_gb_per_hour: 100.0,
                threshold: 0.05,
                check_interval_s: 10.0,
            }),
            arrival_rate_per_s: 0.05,
            seed: 3,
            ..Default::default()
        };
        let chunked_cfg = SimConfig {
            transfer: TransferModel::Chunked(transfer::ChunkedConfig::default()),
            ..base
        };
        let p2p = run_testbed(&ApproG::default(), &world, &base);
        let ch = run_testbed(&ApproG::default(), &world, &chunked_cfg);
        assert_eq!(p2p.measured_admitted, ch.measured_admitted);
        assert_eq!(p2p.measured_volume.to_bits(), ch.measured_volume.to_bits());
        assert_eq!(p2p.mean_response_s.to_bits(), ch.mean_response_s.to_bits());
        assert_eq!(p2p.p50_response_s.to_bits(), ch.p50_response_s.to_bits());
        assert_eq!(p2p.p95_response_s.to_bits(), ch.p95_response_s.to_bits());
        assert_eq!(p2p.max_response_s.to_bits(), ch.max_response_s.to_bits());
        assert_eq!(p2p.mean_transfer_s.to_bits(), ch.mean_transfer_s.to_bits());
        assert_eq!(
            p2p.mean_queue_wait_s.to_bits(),
            ch.mean_queue_wait_s.to_bits()
        );
        assert_eq!(p2p.availability.to_bits(), ch.availability.to_bits());
        assert_eq!(p2p.consistency_rounds, ch.consistency_rounds);
        assert!(p2p.consistency_rounds > 0, "exercise the scheduled tier");
        assert_eq!(p2p.consistency_gb.to_bits(), ch.consistency_gb.to_bits());
        assert_eq!(p2p.answers.len(), ch.answers.len());
        // No faults: nothing to resume or abandon in either model.
        assert_eq!(ch.transfer_resumes, 0);
        assert_eq!(ch.chunk_gb_saved, 0.0);
        assert_eq!(ch.abandoned_dead_source, 0);
        assert_eq!(ch.abandoned_partitioned, 0);
    }

    #[test]
    fn chunked_populates_tier_stats() {
        let world = small_world(2, 3);
        let cfg = SimConfig {
            transfer: TransferModel::Chunked(transfer::ChunkedConfig::default()),
            ..Default::default()
        };
        let report = run_testbed(&ApproG::default(), &world, &cfg);
        // Result shipping rides the immediate tier; no repairs or
        // consistency pushes ran, so the other tiers stay empty.
        assert!(report.tier_completion_mean_s[0] > 0.0);
        assert_eq!(report.tier_completion_mean_s[1], 0.0);
        assert_eq!(report.tier_completion_mean_s[2], 0.0);
        assert_eq!(report.repair_completion_mean_s, 0.0);
        assert!(report.mean_transfer_s > 0.0);
    }

    #[test]
    fn chunked_nic_contention_only_slows_things_down() {
        // Fair-shared finite NICs can only stretch flows relative to
        // infinite ones — the fluid analogue of the legacy FIFO-NIC test.
        let world = small_world(3, 3);
        let storm = SimConfig {
            arrival_rate_per_s: 50.0,
            transfer: TransferModel::Chunked(transfer::ChunkedConfig::default()),
            ..Default::default()
        };
        let free = SimConfig {
            nic_contention: false,
            ..storm
        };
        let with_nic = run_testbed(&ApproG::default(), &world, &storm);
        let without = run_testbed(&ApproG::default(), &world, &free);
        assert!(
            with_nic.mean_response_s >= without.mean_response_s - 1e-9,
            "fair-shared NICs cannot be faster ({} vs {})",
            with_nic.mean_response_s,
            without.mean_response_s
        );
    }

    #[test]
    fn replication_skips_origin_copies() {
        // A plan whose only replica sits at the origin moves zero bytes.
        let world = small_world(1, 1);
        let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        // Volume moved is bounded by replicas * max size.
        let max_possible: f64 = world
            .instance
            .datasets()
            .iter()
            .map(|d| d.size_gb * world.instance.max_replicas() as f64)
            .sum();
        assert!(report.replication_gb <= max_possible + 1e-9);
    }

    use edgerep_model::{Demand, EdgeCloudBuilder, Instance, InstanceBuilder, RedundancyScheme};

    /// Serves a pre-built plan — lets fault tests pin exact shard layouts.
    struct FixedPlan(Solution);

    impl PlacementAlgorithm for FixedPlan {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn solve(&self, _inst: &Instance) -> Solution {
            self.0.clone()
        }
    }

    /// dc —0.05— c0 —0.1— c1 —0.1— c2, one 4 GB dataset at the DC striped
    /// ec(2,1) (shards on c0, c1, c2), two queries homed and served at
    /// c0 / c1. Killing c2 loses one parity shard (degraded reads);
    /// killing c1 and c2 drops below the k = 2 quorum.
    fn tiny_ec_world() -> (TestbedWorld, Solution) {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let c0 = b.add_cloudlet(8.0, 0.01);
        let c1 = b.add_cloudlet(8.0, 0.01);
        let c2 = b.add_cloudlet(8.0, 0.01);
        b.link(dc, c0, 0.05);
        b.link(c0, c1, 0.1);
        b.link(c1, c2, 0.1);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        ib.set_default_scheme(RedundancyScheme::erasure(2, 1).unwrap());
        let d0 = ib.add_dataset(4.0, dc);
        ib.add_query(c0, vec![Demand::new(d0, 0.5)], 0.5, 10.0);
        ib.add_query(c1, vec![Demand::new(d0, 0.5)], 0.5, 10.0);
        let inst = ib.build().unwrap();
        let mut plan = Solution::empty(&inst);
        for v in [c0, c1, c2] {
            plan.place_replica(d0, v);
        }
        plan.assign_query(QueryId(0), vec![c0]);
        plan.assign_query(QueryId(1), vec![c1]);
        plan.validate(&inst).expect("hand-built EC plan is feasible");
        let world = TestbedWorld {
            instance: inst,
            regions: vec![crate::geo::Region::Metro; 4],
            records: vec![Vec::new()],
            query_kinds: vec![crate::analytics::AnalyticsKind::TopApps { k: 3 }; 2],
        };
        (world, plan)
    }

    #[test]
    fn ec_fault_degrades_reads_without_losing_queries() {
        // One of three shards dies before any arrival: both queries still
        // read (their own shard + the surviving co-holder's ≥ k = 2), but
        // every read is counted degraded — served, not lost.
        let (world, plan) = tiny_ec_world();
        let faults = [NodeFailure {
            node: ComputeNodeId(3), // c2: pure shard holder, serves nothing
            at_s: 0.0,
        }];
        let report =
            run_testbed_with_faults(&FixedPlan(plan), &world, &SimConfig::default(), &faults);
        assert_eq!(report.degraded_reads, 2, "both arrivals read 2 of 3 shards");
        assert_eq!(report.queries_lost_to_faults, 0);
        assert_eq!(report.measured_admitted, 2);
        assert_eq!(report.availability, 1.0);
    }

    #[test]
    fn ec_below_quorum_loses_queries() {
        // Two of three shards die: one survivor < k = 2, so reads cannot
        // reconstruct and the queries are lost — availability, not delay.
        let (world, plan) = tiny_ec_world();
        let faults = [
            NodeFailure {
                node: ComputeNodeId(2), // c1
                at_s: 0.0,
            },
            NodeFailure {
                node: ComputeNodeId(3), // c2
                at_s: 0.0,
            },
        ];
        let report =
            run_testbed_with_faults(&FixedPlan(plan), &world, &SimConfig::default(), &faults);
        assert_eq!(report.queries_lost_to_faults, 2, "1 live shard < k = 2");
        assert_eq!(report.measured_admitted, 0);
        assert_eq!(report.degraded_reads, 0);
        assert_eq!(report.availability, 0.0);
    }

    #[test]
    fn ec_reads_charge_gather_and_decode_time() {
        // No faults: nothing is degraded, but every EC read still pays the
        // shard gather (0.1 s/GB × 2 GB from the nearest co-holder) plus
        // the decode (0.02 s/GB × 4 GB) on top of local processing.
        let (world, plan) = tiny_ec_world();
        let report = run_testbed(&FixedPlan(plan), &world, &SimConfig::default());
        assert_eq!(report.degraded_reads, 0);
        assert_eq!(report.measured_admitted, 2);
        // proc 0.04 + gather 0.2 + decode 0.08 = 0.32 s, no result delay
        // (home == serving node).
        assert!(
            (report.max_response_s - 0.32).abs() < 1e-9,
            "got {}",
            report.max_response_s
        );
        // Three shard copies of 2 GB each left the origin.
        assert!((report.replication_gb - 6.0).abs() < 1e-9);
        assert!((report.storage_gb - 6.0).abs() < 1e-9);
    }

    #[test]
    fn scrubber_rebuilds_lost_shards_in_background() {
        // Repair is OFF: only the periodic scrubber notices the lost
        // parity shard, re-encodes it from the k = 2 survivors (charged
        // k × |S|/k = 4 GB of read volume), and restores the full set.
        let (world, plan) = tiny_ec_world();
        let d0 = world.instance.dataset_ids().next().unwrap();
        let faults = [NodeFailure {
            node: ComputeNodeId(3), // c2
            at_s: 0.0,
        }];
        let cfg = SimConfig {
            scrub_interval_s: Some(2.0),
            arrival_rate_per_s: 0.05, // long horizon: several scrub passes
            repair: false,
            ..Default::default()
        };
        let report = run_testbed_with_faults(&FixedPlan(plan), &world, &cfg, &faults);
        assert!(report.repairs_scheduled >= 1, "scrub found the lost shard");
        assert_eq!(report.repairs_completed, 1, "rebuilt once, then clean passes");
        assert!((report.repair_gb - 4.0).abs() < 1e-9, "k × shard volume");
        assert_eq!(report.live_plan.replica_count(d0), 3, "full set restored");
        assert_eq!(report.queries_lost_to_faults, 0);
    }

    fn small_world_scheme(f: usize, k: usize, scheme: RedundancyScheme) -> TestbedWorld {
        let cfg = TestbedConfig {
            trace: edgerep_workload::mobile_trace::TraceConfig {
                users: 200,
                apps: 30,
                days: 10,
                ..Default::default()
            },
            windows: 6,
            query_count: 20,
            ..Default::default()
        }
        .with_max_datasets_per_query(f)
        .with_max_replicas(k)
        .with_redundancy(scheme);
        build_testbed_instance(&cfg, 11)
    }

    #[test]
    fn ec_k1_is_byte_identical_to_replication() {
        // ErasureCoded{k: 1, m: r − 1} stores r full-size shards, needs no
        // decode, and has zero read overhead — with faults off it must be
        // indistinguishable from Replication{r}, bit for bit, end to end
        // (controller, replication phase, query phase, report).
        let rep_world = small_world(2, 3);
        let ec_world = small_world_scheme(2, 3, RedundancyScheme::erasure(1, 2).unwrap());
        let cfg = SimConfig::default();
        let a = run_testbed(&ApproG::default(), &rep_world, &cfg);
        let b = run_testbed(&ApproG::default(), &ec_world, &cfg);
        assert_eq!(a.planned_admitted, b.planned_admitted);
        assert_eq!(a.measured_admitted, b.measured_admitted);
        assert_eq!(a.measured_volume.to_bits(), b.measured_volume.to_bits());
        assert_eq!(a.mean_response_s.to_bits(), b.mean_response_s.to_bits());
        assert_eq!(a.p50_response_s.to_bits(), b.p50_response_s.to_bits());
        assert_eq!(a.p95_response_s.to_bits(), b.p95_response_s.to_bits());
        assert_eq!(a.max_response_s.to_bits(), b.max_response_s.to_bits());
        assert_eq!(a.mean_transfer_s.to_bits(), b.mean_transfer_s.to_bits());
        assert_eq!(a.mean_queue_wait_s.to_bits(), b.mean_queue_wait_s.to_bits());
        assert_eq!(a.availability.to_bits(), b.availability.to_bits());
        assert_eq!(a.replication_gb.to_bits(), b.replication_gb.to_bits());
        assert_eq!(a.storage_gb.to_bits(), b.storage_gb.to_bits());
        assert_eq!(b.degraded_reads, 0);
    }
}
