//! Per-epoch SLO time-series samples.
//!
//! Both testbed drivers can snapshot service-level state as they run —
//! the event-loop simulator ([`crate::sim`]) on a fixed simulated-time
//! interval (`SimConfig::slo_sample_interval_s`), the rolling-horizon
//! driver ([`crate::rolling`]) once per epoch — so figures can show
//! *trajectories* (availability dipping during an outage and recovering
//! with repair, forecast error shrinking as history accrues) instead of
//! endpoint scalars. [`render_slo_csv`] turns one or more labeled series
//! into the `{id}_timeseries.csv` sidecar `repro --csv` writes.

use std::fmt::Write as _;

/// One SLO snapshot. Fields a driver cannot measure hold their neutral
/// value (`1.0` availability, `0.0` rates, `None` wmape).
#[derive(Debug, Clone, PartialEq)]
pub struct SloSample {
    /// Sample time: simulated seconds (sim) or epoch index (rolling).
    pub t_s: f64,
    /// Fraction of planned-admitted queries not yet lost to faults.
    pub availability: f64,
    /// Fraction of completed queries that missed their QoS deadline.
    pub qos_miss_rate: f64,
    /// Repair transfers scheduled but not yet completed (or abandoned).
    pub repair_backlog: usize,
    /// GB proactively moved so far (replication / predictive prefetch).
    pub prefetch_gb: f64,
    /// Forecast weighted MAPE for the epoch, when a forecaster ran.
    pub forecast_wmape: Option<f64>,
}

/// Renders labeled SLO series as CSV:
/// `series,t_s,availability,qos_miss_rate,repair_backlog,prefetch_gb,forecast_wmape`.
/// Missing wmape renders as an empty cell.
pub fn render_slo_csv(series: &[(String, Vec<SloSample>)]) -> String {
    let mut out = String::from(
        "series,t_s,availability,qos_miss_rate,repair_backlog,prefetch_gb,forecast_wmape\n",
    );
    for (label, samples) in series {
        for s in samples {
            let wmape = s
                .forecast_wmape
                .map(|w| format!("{w:.6}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{label},{:.3},{:.6},{:.6},{},{:.3},{wmape}",
                s.t_s, s.availability, s.qos_miss_rate, s.repair_backlog, s.prefetch_gb
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_renders_labeled_rows_and_empty_wmape() {
        let series = vec![
            (
                "repair-on".to_string(),
                vec![SloSample {
                    t_s: 10.0,
                    availability: 0.95,
                    qos_miss_rate: 0.125,
                    repair_backlog: 3,
                    prefetch_gb: 42.5,
                    forecast_wmape: None,
                }],
            ),
            (
                "ewma".to_string(),
                vec![SloSample {
                    t_s: 1.0,
                    availability: 1.0,
                    qos_miss_rate: 0.0,
                    repair_backlog: 0,
                    prefetch_gb: 7.0,
                    forecast_wmape: Some(0.25),
                }],
            ),
        ];
        let csv = render_slo_csv(&series);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "series,t_s,availability,qos_miss_rate,repair_backlog,prefetch_gb,forecast_wmape"
        );
        assert_eq!(lines[1], "repair-on,10.000,0.950000,0.125000,3,42.500,");
        assert_eq!(lines[2], "ewma,1.000,1.000000,0.000000,0,7.000,0.250000");
        // Every row has the full column count even with missing wmape.
        assert!(lines.iter().all(|l| l.matches(',').count() == 6), "{csv}");
    }
}
