//! The Fig. 6 testbed topology and its workload.
//!
//! 20 leased VMs — 4 "data center" VMs in San Francisco, New York, Toronto
//! and Singapore, 16 "cloudlet" VMs in the metro — plus 2 switches, with a
//! controller running the placement algorithms (the controller does not
//! appear in the model: it only *computes* placements). Datasets are
//! time-partitioned slices of the synthetic mobile-app-usage trace,
//! randomly distributed over the VMs exactly as §4.3 describes.

use edgerep_model::prelude::*;
use edgerep_obs as obs;
use edgerep_workload::mobile_trace::{self, Record, TraceConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::analytics::AnalyticsKind;
use crate::geo::{transfer_delay_per_gb, Region};

/// Testbed shape and workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedConfig {
    /// Cloudlet VMs (paper: 16).
    pub cloudlet_vms: usize,
    /// DC VM compute capacity range, GHz (VM-scale, not data-center-scale —
    /// the paper itself notes its testbed DCs are small).
    pub dc_vm_capacity: (f64, f64),
    /// Cloudlet VM compute capacity range, GHz.
    pub cloudlet_vm_capacity: (f64, f64),
    /// DC VM processing delay, s/GB.
    pub dc_proc_delay: (f64, f64),
    /// Cloudlet VM processing delay, s/GB.
    pub cloudlet_proc_delay: (f64, f64),
    /// Synthetic trace standing in for the proprietary 3M-user dataset.
    pub trace: TraceConfig,
    /// Number of time windows the trace is partitioned into (= datasets).
    pub windows: usize,
    /// Dataset size range the trace volumes are normalized into, GB.
    pub dataset_size_gb: (f64, f64),
    /// Number of analytics queries issued.
    pub query_count: usize,
    /// Datasets demanded per query `[lo, hi]` (Fig. 7's `F` = hi).
    pub datasets_per_query: (usize, usize),
    /// Compute rate range, GHz/GB.
    pub compute_rate: (f64, f64),
    /// Selectivity range.
    pub selectivity: (f64, f64),
    /// Deadline base, seconds (testbed payloads are GB-scale, so seconds).
    pub deadline_base: (f64, f64),
    /// Deadline per GB of the largest demanded dataset, s/GB.
    pub deadline_per_gb: (f64, f64),
    /// Replica budget `K` (Fig. 8's x-axis).
    pub max_replicas: usize,
    /// Redundancy scheme applied to every dataset. `None` keeps the
    /// paper's plain replication at budget `K` (`Replication{max_replicas}`).
    pub redundancy: Option<RedundancyScheme>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            cloudlet_vms: 16,
            dc_vm_capacity: (16.0, 32.0),
            cloudlet_vm_capacity: (4.0, 8.0),
            dc_proc_delay: (0.002, 0.005),
            cloudlet_proc_delay: (0.005, 0.015),
            trace: TraceConfig {
                users: 2_000,
                apps: 150,
                days: 90,
                ..Default::default()
            },
            windows: 12,
            dataset_size_gb: (1.0, 6.0),
            query_count: 60,
            datasets_per_query: (1, 4),
            compute_rate: (0.75, 1.25),
            selectivity: (0.1, 1.0),
            deadline_base: (1.0, 6.0),
            deadline_per_gb: (0.2, 1.0),
            max_replicas: 3,
            redundancy: None,
        }
    }
}

impl TestbedConfig {
    /// Sets the `F` knob (Fig. 7).
    pub fn with_max_datasets_per_query(mut self, f: usize) -> Self {
        assert!(f >= 1);
        self.datasets_per_query = (self.datasets_per_query.0.min(f), f);
        self
    }

    /// Sets the `K` knob (Fig. 8).
    pub fn with_max_replicas(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.max_replicas = k;
        self
    }

    /// Stores every dataset under `scheme` (the ext-ec arms): erasure
    /// coding with `k` data + `m` parity shards, or explicit replication.
    pub fn with_redundancy(mut self, scheme: RedundancyScheme) -> Self {
        self.redundancy = Some(scheme);
        self
    }
}

/// The built world: the model instance plus everything the simulator needs
/// that the model doesn't carry.
#[derive(Debug, Clone)]
pub struct TestbedWorld {
    /// The placement-problem instance (given to the controller).
    pub instance: Instance,
    /// Region of each compute node.
    pub regions: Vec<Region>,
    /// Trace records per dataset (the query engine scans these).
    pub records: Vec<Vec<Record>>,
    /// Analytics class of each query.
    pub query_kinds: Vec<AnalyticsKind>,
}

/// Builds the Fig. 6 edge cloud: DC VMs per region, metro cloudlets
/// hanging off two switches, WAN links from switches to DCs.
pub fn build_fig6_topology(
    cfg: &TestbedConfig,
    rng: &mut SmallRng,
) -> (EdgeCloudBuilder, Vec<Region>) {
    let mut b = EdgeCloudBuilder::new();
    let mut regions = Vec::new();
    let draw = |rng: &mut SmallRng, (lo, hi): (f64, f64)| {
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    };

    // DC VMs, one per region.
    let mut dcs = Vec::new();
    for region in Region::DC_REGIONS {
        let dc = b.add_data_center(draw(rng, cfg.dc_vm_capacity), draw(rng, cfg.dc_proc_delay));
        regions.push(region);
        dcs.push((dc, region));
    }
    // Cloudlet VMs in the metro.
    let mut cloudlets = Vec::new();
    for _ in 0..cfg.cloudlet_vms {
        let cl = b.add_cloudlet(
            draw(rng, cfg.cloudlet_vm_capacity),
            draw(rng, cfg.cloudlet_proc_delay),
        );
        regions.push(Region::Metro);
        cloudlets.push(cl);
    }
    // Two metro switches; cloudlets split between them, switches bridged.
    let sw0 = b.add_switch();
    let sw1 = b.add_switch();
    let metro_local = transfer_delay_per_gb(Region::Metro, Region::Metro);
    b.link_graph(sw0, sw1, metro_local);
    for (i, &cl) in cloudlets.iter().enumerate() {
        let sw = if i % 2 == 0 { sw0 } else { sw1 };
        b.link_graph(b.graph_node(cl), sw, metro_local);
    }
    // WAN links: each switch is a gateway to every DC (§2.1: DCs are
    // reached via the Internet through gateway switches).
    for &(dc, region) in &dcs {
        let wan = transfer_delay_per_gb(Region::Metro, region);
        b.link_graph(b.graph_node(dc), sw0, wan);
        b.link_graph(b.graph_node(dc), sw1, wan);
    }
    // DC-to-DC backbone.
    for i in 0..dcs.len() {
        for j in (i + 1)..dcs.len() {
            let (dci, ri) = dcs[i];
            let (dcj, rj) = dcs[j];
            b.link(dci, dcj, transfer_delay_per_gb(ri, rj));
        }
    }
    (b, regions)
}

/// Builds the whole testbed world from a seed: topology, trace-backed
/// datasets, and analytics queries.
pub fn build_testbed_instance(cfg: &TestbedConfig, seed: u64) -> TestbedWorld {
    // Trace generation + partitioning is a real cost; give it its own
    // profile frame instead of letting it hide in the caller's self time.
    let _span = obs::span("sim", "sim.build_world");
    assert!(cfg.windows >= 1, "need at least one dataset window");
    assert!(cfg.query_count >= 1, "need at least one query");
    let mut rng = SmallRng::seed_from_u64(seed);
    let (builder, regions) = build_fig6_topology(cfg, &mut rng);
    let cloud = builder.build().expect("testbed topology is valid");
    let compute_ids: Vec<ComputeNodeId> = cloud.compute_ids().collect();
    let dc_count = 4usize;

    // Trace → time-partitioned datasets with sizes normalized into the
    // configured GB range ("we divide the data into a number of datasets
    // according to the data creation time", §4.3).
    let trace = mobile_trace::generate_trace(&cfg.trace, seed ^ 0x5eed);
    let parts = mobile_trace::partition_by_time(&trace, cfg.windows);
    let volumes: Vec<u64> = parts
        .iter()
        .map(|p| mobile_trace::volume_bytes(p))
        .collect();
    let vmin = *volumes.iter().min().expect("windows >= 1") as f64;
    let vmax = *volumes.iter().max().expect("windows >= 1") as f64;
    let (glo, ghi) = cfg.dataset_size_gb;
    let mut ib = InstanceBuilder::new(cloud, cfg.max_replicas);
    if let Some(scheme) = cfg.redundancy {
        ib.set_default_scheme(scheme);
    }
    for &v in &volumes {
        let t = if vmax > vmin {
            (v as f64 - vmin) / (vmax - vmin)
        } else {
            0.5
        };
        let size = glo + t * (ghi - glo);
        // "randomly distribute the datasets into the data centers and
        // cloudlets": origin drawn over all VMs, biased to DCs where the
        // legacy services live.
        let origin = if rng.gen_bool(0.7) {
            compute_ids[rng.gen_range(0..dc_count)]
        } else {
            compute_ids[rng.gen_range(dc_count..compute_ids.len())]
        };
        ib.add_dataset(size.max(0.05), origin);
    }

    // Queries: homes at cloudlets, analytics classes drawn per query.
    let mut query_kinds = Vec::with_capacity(cfg.query_count);
    let draw = |rng: &mut SmallRng, (lo, hi): (f64, f64)| {
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    };
    for _ in 0..cfg.query_count {
        let home = compute_ids[rng.gen_range(dc_count..compute_ids.len())];
        let f = rng
            .gen_range(cfg.datasets_per_query.0..=cfg.datasets_per_query.1)
            .min(cfg.windows);
        let mut pool: Vec<u32> = (0..cfg.windows as u32).collect();
        let mut demands = Vec::with_capacity(f);
        let mut largest: f64 = 0.0;
        for slot in 0..f {
            let pick = rng.gen_range(slot..pool.len());
            pool.swap(slot, pick);
            let d = DatasetId(pool[slot]);
            largest = largest.max(ib.dataset_size(d));
            demands.push(Demand::new(d, draw(&mut rng, cfg.selectivity)));
        }
        let deadline =
            draw(&mut rng, cfg.deadline_base) + largest * draw(&mut rng, cfg.deadline_per_gb);
        ib.add_query(home, demands, draw(&mut rng, cfg.compute_rate), deadline);
        query_kinds.push(AnalyticsKind::random(&mut rng));
    }

    TestbedWorld {
        instance: ib.build().expect("testbed instance is valid"),
        regions,
        records: parts,
        query_kinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape() {
        let cfg = TestbedConfig::default();
        let world = build_testbed_instance(&cfg, 1);
        let cloud = world.instance.cloud();
        assert_eq!(cloud.data_center_count(), 4);
        assert_eq!(cloud.cloudlet_count(), 16);
        // 4 DCs + 16 cloudlets + 2 switches.
        assert_eq!(cloud.graph().node_count(), 22);
        assert!(edgerep_graph::connectivity::is_connected(cloud.graph()));
        assert_eq!(world.regions.len(), 20);
        assert_eq!(&world.regions[0..4], &Region::DC_REGIONS);
        assert!(world.regions[4..].iter().all(|&r| r == Region::Metro));
    }

    #[test]
    fn world_is_deterministic() {
        let cfg = TestbedConfig::default();
        let a = build_testbed_instance(&cfg, 7);
        let b = build_testbed_instance(&cfg, 7);
        assert_eq!(a.instance.queries(), b.instance.queries());
        assert_eq!(a.records, b.records);
        assert_eq!(a.query_kinds, b.query_kinds);
    }

    #[test]
    fn datasets_match_windows_with_sizes_in_range() {
        let cfg = TestbedConfig::default();
        let world = build_testbed_instance(&cfg, 3);
        assert_eq!(world.instance.datasets().len(), cfg.windows);
        assert_eq!(world.records.len(), cfg.windows);
        for d in world.instance.datasets() {
            assert!(d.size_gb >= 1.0 - 1e-9 && d.size_gb <= 6.0 + 1e-9);
        }
    }

    #[test]
    fn metro_paths_faster_than_wan() {
        let cfg = TestbedConfig::default();
        let world = build_testbed_instance(&cfg, 2);
        let cloud = world.instance.cloud();
        // cloudlet->cloudlet beats cloudlet->Singapore DC.
        let cl_a = ComputeNodeId(4);
        let cl_b = ComputeNodeId(5);
        let sgp = ComputeNodeId(3); // 4th DC region = Singapore
        assert!(cloud.min_delay(cl_a, cl_b) < cloud.min_delay(cl_a, sgp));
    }

    #[test]
    fn queries_home_on_cloudlets() {
        let cfg = TestbedConfig::default();
        let world = build_testbed_instance(&cfg, 5);
        for q in world.instance.queries() {
            assert!(q.home.0 >= 4, "query {} homes on a DC", q.id);
        }
        assert_eq!(world.query_kinds.len(), cfg.query_count);
    }

    #[test]
    fn redundancy_knob_stripes_every_dataset() {
        let scheme = RedundancyScheme::erasure(4, 2).unwrap();
        let cfg = TestbedConfig::default().with_redundancy(scheme);
        let world = build_testbed_instance(&cfg, 11);
        for d in world.instance.dataset_ids() {
            assert_eq!(world.instance.scheme(d), scheme);
            assert_eq!(world.instance.slots(d), 6);
            assert!(
                (world.instance.shard_gb(d) - world.instance.size(d) / 4.0).abs() < 1e-12,
                "shards are |S|/k"
            );
        }
    }

    #[test]
    fn f_and_k_knobs() {
        let cfg = TestbedConfig::default()
            .with_max_datasets_per_query(2)
            .with_max_replicas(5);
        let world = build_testbed_instance(&cfg, 9);
        assert_eq!(world.instance.max_replicas(), 5);
        assert!(world
            .instance
            .queries()
            .iter()
            .all(|q| q.demands.len() <= 2));
    }
}
