//! Chunked, resumable multi-source transfer engine with priority tiers
//! and per-link max-min fair sharing.
//!
//! Datasets are split into fixed-size chunks tracked by a per-replica
//! [`ChunkLedger`]. An in-flight [`Engine`] transfer opens one flow per
//! live holder and fetches missing chunks in parallel, rarest-chunk-first
//! across concurrent transfers of the same dataset. When a source dies or
//! a link partitions mid-flight, the ledger keeps every verified chunk, so
//! the transfer resumes from the last completed chunk instead of
//! restarting from zero.
//!
//! Bandwidth follows a fluid model: every (source, dest) flow gets a rate
//! from a strict-priority max-min water-fill over per-node NIC capacities
//! ([`FlowTier::Immediate`] fills first, then `Scheduled`, then
//! `Background` — recomputing rates on every event is what "preemption"
//! means in a fluid model), each flow additionally capped by its path rate
//! `1 / (delay_s_per_gb * factor)`. Progress is integrated between
//! events; the simulator schedules a single `FlowProgress` event at the
//! engine's next predicted chunk completion.
//!
//! ## Exactness
//!
//! The legacy point-to-point model computes a transfer's duration as
//! `(delay * gb) * factor` once, at launch. To keep zero-fault runs
//! byte-identical to that baseline, a single-flow transfer that has the
//! dataset to itself runs *coalesced*: one completion prediction covers
//! the whole remainder, computed with the same expression and operand
//! order, and predictions are cached as absolute [`SimTime`]s that are
//! only recomputed when the flow's rate or assignment actually changes —
//! integration drift can never move a completion instant.

use crate::event::SimTime;

/// Default chunk size, GB. Small enough that a fault window mid-transfer
/// preserves most progress; large enough that per-chunk events stay cheap.
pub const DEFAULT_CHUNK_GB: f64 = 0.25;

/// Default per-node NIC capacity (egress and ingress), GB/s.
pub const DEFAULT_NIC_GB_PER_S: f64 = 2.5;

/// Priority tier of a flow. Lower index = higher priority; the water-fill
/// grants each tier bandwidth only from what the tiers above left over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowTier {
    /// Deadline-critical result transfers.
    Immediate,
    /// Predictive prefetch and consistency propagation.
    Scheduled,
    /// Repair re-replication: preemptible background traffic.
    Background,
}

impl FlowTier {
    /// All tiers, highest priority first.
    pub const ALL: [FlowTier; 3] = [FlowTier::Immediate, FlowTier::Scheduled, FlowTier::Background];

    /// Tier index (0 = highest priority).
    pub fn index(self) -> usize {
        match self {
            FlowTier::Immediate => 0,
            FlowTier::Scheduled => 1,
            FlowTier::Background => 2,
        }
    }

    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            FlowTier::Immediate => "immediate",
            FlowTier::Scheduled => "scheduled",
            FlowTier::Background => "background",
        }
    }
}

/// Chunked-transfer knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkedConfig {
    /// Chunk size, GB.
    pub chunk_gb: f64,
    /// Keep verified chunks across interruptions (resume) instead of
    /// restarting the replica from zero.
    pub resume: bool,
    /// Fetch from all live holders in parallel; `false` pins each
    /// transfer to its single nearest source.
    pub multi_source: bool,
    /// Per-node NIC capacity (applied to egress and ingress), GB/s.
    /// `f64::INFINITY` models uncontended NICs.
    pub nic_gb_per_s: f64,
}

impl Default for ChunkedConfig {
    fn default() -> Self {
        Self {
            chunk_gb: DEFAULT_CHUNK_GB,
            resume: true,
            multi_source: true,
            nic_gb_per_s: DEFAULT_NIC_GB_PER_S,
        }
    }
}

impl ChunkedConfig {
    /// Disables resume (interrupted replicas restart from zero).
    pub fn without_resume(mut self) -> Self {
        self.resume = false;
        self
    }

    /// Disables multi-source fetch (single nearest holder only).
    pub fn without_multi_source(mut self) -> Self {
        self.multi_source = false;
        self
    }
}

/// Which transfer model the simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TransferModel {
    /// Legacy single-source point-to-point flows with serialized egress.
    #[default]
    PointToPoint,
    /// The chunked multi-source engine in this module.
    Chunked(ChunkedConfig),
}

/// Per-replica chunk ledger: which fixed-size pieces of a dataset copy
/// have been transferred and verified.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkLedger {
    total_gb: f64,
    chunk_gb: f64,
    verified: Vec<bool>,
}

impl ChunkLedger {
    /// A fresh (all-missing) ledger for a `total_gb` replica.
    pub fn new(total_gb: f64, chunk_gb: f64) -> Self {
        assert!(total_gb >= 0.0 && total_gb.is_finite(), "invalid size {total_gb}");
        assert!(chunk_gb > 0.0 && chunk_gb.is_finite(), "invalid chunk {chunk_gb}");
        let n = if total_gb <= 0.0 {
            0
        } else {
            ((total_gb / chunk_gb).ceil() as usize).max(1)
        };
        Self {
            total_gb,
            chunk_gb,
            verified: vec![false; n],
        }
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.verified.len()
    }

    /// Replica size, GB.
    pub fn total_gb(&self) -> f64 {
        self.total_gb
    }

    /// Size of chunk `c`, GB (the last chunk absorbs the remainder).
    pub fn chunk_size(&self, c: usize) -> f64 {
        let n = self.verified.len();
        assert!(c < n);
        if c + 1 == n {
            self.total_gb - (n - 1) as f64 * self.chunk_gb
        } else {
            self.chunk_gb
        }
    }

    /// Whether chunk `c` has been verified.
    pub fn is_verified(&self, c: usize) -> bool {
        self.verified[c]
    }

    /// Marks chunk `c` verified; returns `false` if it already was (the
    /// engine never double-counts a chunk).
    pub fn mark_verified(&mut self, c: usize) -> bool {
        if self.verified[c] {
            false
        } else {
            self.verified[c] = true;
            true
        }
    }

    /// Number of verified chunks.
    pub fn verified_count(&self) -> usize {
        self.verified.iter().filter(|&&v| v).count()
    }

    /// Verified volume, GB.
    pub fn verified_gb(&self) -> f64 {
        (0..self.n_chunks())
            .filter(|&c| self.verified[c])
            .map(|c| self.chunk_size(c))
            .sum()
    }

    /// Missing volume, GB. Exact (`== total_gb` bitwise) for a pristine
    /// ledger so coalesced predictions reproduce the legacy expression.
    pub fn missing_gb(&self) -> f64 {
        if self.verified_count() == 0 {
            return self.total_gb;
        }
        (0..self.n_chunks())
            .filter(|&c| !self.verified[c])
            .map(|c| self.chunk_size(c))
            .sum()
    }

    /// Lowest-index missing chunk, if any.
    pub fn first_missing(&self) -> Option<usize> {
        self.verified.iter().position(|&v| !v)
    }

    /// Whether every chunk is verified (zero-size replicas are complete).
    pub fn is_complete(&self) -> bool {
        self.verified.iter().all(|&v| v)
    }

    /// Forgets all verified chunks (resume disabled).
    pub fn reset(&mut self) {
        for v in &mut self.verified {
            *v = false;
        }
    }
}

/// One (source node, path) a transfer may fetch from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourcePath {
    /// Source node index.
    pub node: usize,
    /// Path delay, seconds per GB (the reciprocal of the path rate).
    pub delay_s_per_gb: f64,
    /// Link degradation factor from the fault plan (1.0 = healthy).
    pub factor: f64,
}

#[derive(Debug, Clone)]
struct Flow {
    src: SourcePath,
    /// Rate granted by the last water-fill, GB/s.
    rate: f64,
    /// Whether the path cap (not a NIC share) is the binding constraint.
    at_path_cap: bool,
    /// Chunk currently being fetched.
    chunk: Option<usize>,
    /// Remaining GB in the current chunk.
    rem_gb: f64,
    /// Single-flow fast path: one prediction covers the whole remainder.
    coalesced: bool,
    /// Cached absolute completion instant; `None` = needs recompute.
    pred: Option<SimTime>,
}

impl Flow {
    fn path_cap(&self) -> f64 {
        let s_per_gb = self.src.delay_s_per_gb * self.src.factor;
        if s_per_gb <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / s_per_gb
        }
    }
}

#[derive(Debug, Clone)]
struct Transfer {
    dest: usize,
    tier: FlowTier,
    dataset: Option<usize>,
    ledger: ChunkLedger,
    flows: Vec<Flow>,
    started: SimTime,
    done: bool,
}

/// The transfer engine: owns every in-flight chunked transfer, grants
/// rates, integrates progress, and reports completions.
pub struct Engine {
    cfg: ChunkedConfig,
    nodes: usize,
    transfers: Vec<Transfer>,
    pending_done: Vec<usize>,
    generation: u64,
    now: SimTime,
}

impl Engine {
    /// An empty engine over `nodes` compute nodes.
    pub fn new(cfg: ChunkedConfig, nodes: usize) -> Self {
        assert!(cfg.chunk_gb > 0.0 && cfg.chunk_gb.is_finite());
        assert!(cfg.nic_gb_per_s > 0.0);
        Self {
            cfg,
            nodes,
            transfers: Vec::new(),
            pending_done: Vec::new(),
            generation: 0,
            now: SimTime::ZERO,
        }
    }

    /// Engine configuration.
    pub fn config(&self) -> ChunkedConfig {
        self.cfg
    }

    /// Monotone settle counter: a scheduled `FlowProgress` event carrying
    /// an older generation is stale and must be ignored.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Transfers still in flight.
    pub fn active_count(&self) -> usize {
        self.transfers.iter().filter(|t| !t.done).count()
    }

    /// Whether transfer `id` has completed or been cancelled.
    pub fn is_done(&self, id: usize) -> bool {
        self.transfers[id].done
    }

    /// When transfer `id` (last) started.
    pub fn started(&self, id: usize) -> SimTime {
        self.transfers[id].started
    }

    /// Priority tier of transfer `id`.
    pub fn tier(&self, id: usize) -> FlowTier {
        self.transfers[id].tier
    }

    /// Verified volume of transfer `id`'s ledger, GB.
    pub fn verified_gb(&self, id: usize) -> f64 {
        self.transfers[id].ledger.verified_gb()
    }

    /// Starts a transfer toward `dest` over `sources` and returns its id.
    /// A ledger with verified chunks resumes: only missing chunks move.
    pub fn begin(
        &mut self,
        now: SimTime,
        dest: usize,
        tier: FlowTier,
        dataset: Option<usize>,
        ledger: ChunkLedger,
        sources: &[SourcePath],
    ) -> usize {
        self.run_to(now);
        let done = ledger.is_complete();
        let id = self.transfers.len();
        self.transfers.push(Transfer {
            dest,
            tier,
            dataset,
            ledger,
            flows: Vec::new(),
            started: now,
            done,
        });
        if done {
            self.pending_done.push(id);
        } else {
            self.apply_sources(id, sources);
        }
        self.settle();
        id
    }

    /// Replaces the source set of transfer `id`. Surviving sources keep
    /// their in-flight chunk (a changed path only reprices it); dropped
    /// sources lose progress below the last chunk boundary.
    pub fn set_sources(&mut self, now: SimTime, id: usize, sources: &[SourcePath]) {
        self.run_to(now);
        if self.transfers[id].done {
            return;
        }
        self.apply_sources(id, sources);
        self.settle();
    }

    /// Cancels transfer `id` and returns its ledger (verified chunks
    /// intact) so the caller can park it for a later resume.
    pub fn cancel(&mut self, now: SimTime, id: usize) -> ChunkLedger {
        self.run_to(now);
        let t = &mut self.transfers[id];
        t.done = true;
        t.flows.clear();
        let ledger = t.ledger.clone();
        self.pending_done.retain(|&x| x != id);
        self.settle();
        ledger
    }

    /// Integrates progress up to `now`, firing any due chunk completions,
    /// and returns the transfers that finished.
    pub fn advance(&mut self, now: SimTime) -> Vec<usize> {
        self.run_to(now);
        std::mem::take(&mut self.pending_done)
    }

    /// The next instant the simulator must call back at (earliest
    /// predicted completion), with the generation that stamps the event.
    pub fn next_event(&self) -> Option<(SimTime, u64)> {
        if !self.pending_done.is_empty() {
            return Some((self.now, self.generation));
        }
        let mut best: Option<SimTime> = None;
        for t in &self.transfers {
            if t.done {
                continue;
            }
            for f in &t.flows {
                if let Some(p) = f.pred {
                    if best.is_none_or(|b| p < b) {
                        best = Some(p);
                    }
                }
            }
        }
        best.map(|t| (t.max(self.now), self.generation))
    }

    /// Rarest-first chunk pick for transfer `id`: among missing chunks not
    /// already assigned to one of its own flows, the chunk held or fetched
    /// by the fewest concurrent transfers of the same dataset (ties break
    /// to the lowest index). Public so the bench suite can time it.
    pub fn pick_chunk(&self, id: usize) -> Option<usize> {
        let tr = &self.transfers[id];
        let mut best: Option<(usize, usize)> = None;
        'chunks: for c in 0..tr.ledger.n_chunks() {
            if tr.ledger.is_verified(c) {
                continue;
            }
            for f in &tr.flows {
                if f.chunk == Some(c) {
                    continue 'chunks;
                }
            }
            let cand = (self.swarm_count(id, c), c);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        best.map(|(_, c)| c)
    }

    fn swarm_count(&self, id: usize, c: usize) -> usize {
        let Some(d) = self.transfers[id].dataset else {
            return 0;
        };
        self.transfers
            .iter()
            .enumerate()
            .filter(|&(o, t)| o != id && !t.done && t.dataset == Some(d))
            .filter(|&(_, t)| {
                c < t.ledger.n_chunks()
                    && (t.ledger.is_verified(c) || t.flows.iter().any(|f| f.chunk == Some(c)))
            })
            .count()
    }

    fn shares_dataset(&self, id: usize) -> bool {
        let Some(d) = self.transfers[id].dataset else {
            return false;
        };
        self.transfers
            .iter()
            .enumerate()
            .any(|(o, t)| o != id && !t.done && t.dataset == Some(d))
    }

    fn apply_sources(&mut self, id: usize, sources: &[SourcePath]) {
        let tr = &mut self.transfers[id];
        let mut kept: Vec<Flow> = Vec::with_capacity(sources.len());
        for s in sources {
            if kept.iter().any(|f| f.src.node == s.node) {
                continue;
            }
            if let Some(pos) = tr.flows.iter().position(|f| f.src.node == s.node) {
                let mut f = tr.flows.remove(pos);
                if f.src.delay_s_per_gb != s.delay_s_per_gb || f.src.factor != s.factor {
                    f.src = *s;
                    f.pred = None;
                }
                kept.push(f);
            } else {
                kept.push(Flow {
                    src: *s,
                    rate: 0.0,
                    at_path_cap: false,
                    chunk: None,
                    rem_gb: 0.0,
                    coalesced: false,
                    pred: None,
                });
            }
        }
        tr.flows = kept;
    }

    /// Fires completions due by `target` in time order, then integrates
    /// the remaining interval.
    fn run_to(&mut self, target: SimTime) {
        let target = target.max(self.now);
        loop {
            let mut best: Option<(SimTime, usize, usize)> = None;
            for (tid, t) in self.transfers.iter().enumerate() {
                if t.done {
                    continue;
                }
                for (fid, f) in t.flows.iter().enumerate() {
                    if let Some(p) = f.pred {
                        if p <= target && best.is_none_or(|b| (p, tid, fid) < b) {
                            best = Some((p, tid, fid));
                        }
                    }
                }
            }
            let Some((p, tid, fid)) = best else { break };
            self.integrate_to(p);
            self.fire(tid, fid);
            self.settle();
        }
        self.integrate_to(target);
    }

    fn integrate_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        let dt = t.secs_since(self.now);
        for tr in &mut self.transfers {
            if tr.done {
                continue;
            }
            for f in &mut tr.flows {
                if f.rate <= 0.0 || !f.rate.is_finite() || f.chunk.is_none() {
                    continue;
                }
                let mut budget = f.rate * dt;
                if f.coalesced {
                    // May cross several chunk boundaries: verify each as
                    // the fluid front passes it. The *final* missing piece
                    // is never verified here — completion is snapped by
                    // `fire()` at the predicted instant, so a transfer
                    // can't silently finish inside an integration step.
                    while budget > 0.0 {
                        let Some(c) = f.chunk else { break };
                        if budget >= f.rem_gb {
                            let n = tr.ledger.n_chunks();
                            let last_piece =
                                !(0..n).any(|o| o != c && !tr.ledger.is_verified(o));
                            if last_piece {
                                f.rem_gb = 0.0;
                                budget = 0.0;
                            } else {
                                budget -= f.rem_gb;
                                tr.ledger.mark_verified(c);
                                let nc = tr.ledger.first_missing().expect("missing chunk");
                                f.chunk = Some(nc);
                                f.rem_gb = tr.ledger.chunk_size(nc);
                            }
                        } else {
                            f.rem_gb -= budget;
                            budget = 0.0;
                        }
                    }
                } else {
                    // Per-chunk flows never integrate past their own
                    // completion event; clamp float overshoot.
                    f.rem_gb = (f.rem_gb - budget).max(0.0);
                }
            }
        }
        self.now = t;
    }

    /// Snaps the predicted completion exactly: the chunk (or, coalesced,
    /// the whole remainder) is verified with no residual float dust.
    fn fire(&mut self, tid: usize, fid: usize) {
        let tr = &mut self.transfers[tid];
        let f = &mut tr.flows[fid];
        f.pred = None;
        if f.coalesced {
            for c in 0..tr.ledger.n_chunks() {
                tr.ledger.mark_verified(c);
            }
            f.chunk = None;
            f.rem_gb = 0.0;
        } else if let Some(c) = f.chunk.take() {
            tr.ledger.mark_verified(c);
            f.rem_gb = 0.0;
        }
        if tr.ledger.is_complete() {
            tr.done = true;
            tr.flows.clear();
            self.pending_done.push(tid);
        }
    }

    fn settle(&mut self) {
        self.assign_chunks();
        self.waterfill();
        self.predict();
        self.generation += 1;
    }

    fn assign_chunks(&mut self) {
        for tid in 0..self.transfers.len() {
            if self.transfers[tid].done {
                continue;
            }
            let eligible = self.transfers[tid].flows.len() == 1 && !self.shares_dataset(tid);
            {
                let tr = &mut self.transfers[tid];
                for f in &mut tr.flows {
                    if f.coalesced != eligible {
                        f.coalesced = eligible;
                        f.pred = None;
                    }
                }
            }
            loop {
                let Some(fid) = self.transfers[tid].flows.iter().position(|f| f.chunk.is_none())
                else {
                    break;
                };
                let Some(c) = self.pick_chunk(tid) else { break };
                let tr = &mut self.transfers[tid];
                tr.flows[fid].chunk = Some(c);
                tr.flows[fid].rem_gb = tr.ledger.chunk_size(c);
                tr.flows[fid].pred = None;
            }
        }
    }

    /// Strict-priority progressive max-min water-fill over per-node NIC
    /// capacities, each flow capped by its path rate.
    fn waterfill(&mut self) {
        let mut egress = vec![self.cfg.nic_gb_per_s; self.nodes];
        let mut ingress = vec![self.cfg.nic_gb_per_s; self.nodes];
        for tier in FlowTier::ALL {
            let mut act: Vec<(usize, usize)> = Vec::new();
            for (tid, t) in self.transfers.iter().enumerate() {
                if t.done || t.tier != tier {
                    continue;
                }
                for (fid, f) in t.flows.iter().enumerate() {
                    if f.chunk.is_some() {
                        act.push((tid, fid));
                    }
                }
            }
            if act.is_empty() {
                continue;
            }
            let caps: Vec<f64> = act
                .iter()
                .map(|&(tid, fid)| self.transfers[tid].flows[fid].path_cap())
                .collect();
            let ends: Vec<(usize, usize)> = act
                .iter()
                .map(|&(tid, fid)| (self.transfers[tid].flows[fid].src.node, self.transfers[tid].dest))
                .collect();
            let mut granted = vec![0.0f64; act.len()];
            let mut capped = vec![false; act.len()];
            let mut frozen = vec![false; act.len()];
            loop {
                let live: Vec<usize> = (0..act.len()).filter(|&i| !frozen[i]).collect();
                if live.is_empty() {
                    break;
                }
                let mut eg_count = vec![0usize; self.nodes];
                let mut in_count = vec![0usize; self.nodes];
                for &i in &live {
                    eg_count[ends[i].0] += 1;
                    in_count[ends[i].1] += 1;
                }
                let mut inc = f64::INFINITY;
                for &i in &live {
                    let (s, d) = ends[i];
                    inc = inc
                        .min(egress[s] / eg_count[s] as f64)
                        .min(ingress[d] / in_count[d] as f64)
                        .min(caps[i] - granted[i]);
                }
                if inc.is_infinite() {
                    for &i in &live {
                        granted[i] = f64::INFINITY;
                        capped[i] = true;
                        frozen[i] = true;
                    }
                    break;
                }
                if inc > 0.0 {
                    for &i in &live {
                        let (s, d) = ends[i];
                        granted[i] += inc;
                        egress[s] -= inc;
                        ingress[d] -= inc;
                    }
                }
                let mut progressed = false;
                for &i in &live {
                    let (s, d) = ends[i];
                    if granted[i] + 1e-12 >= caps[i] {
                        granted[i] = caps[i];
                        capped[i] = true;
                        frozen[i] = true;
                        progressed = true;
                    } else if egress[s] <= 1e-9 || ingress[d] <= 1e-9 {
                        frozen[i] = true;
                        progressed = true;
                    }
                }
                if !progressed {
                    for &i in &live {
                        frozen[i] = true;
                    }
                }
            }
            for (i, &(tid, fid)) in act.iter().enumerate() {
                let f = &mut self.transfers[tid].flows[fid];
                if f.rate.to_bits() != granted[i].to_bits() || f.at_path_cap != capped[i] {
                    f.rate = granted[i];
                    f.at_path_cap = capped[i];
                    f.pred = None;
                }
            }
        }
        for t in &mut self.transfers {
            if t.done {
                continue;
            }
            for f in &mut t.flows {
                if f.chunk.is_none() && f.rate != 0.0 {
                    f.rate = 0.0;
                    f.at_path_cap = false;
                    f.pred = None;
                }
            }
        }
    }

    /// Recomputes completion instants for flows whose trajectory changed
    /// (`pred == None`); undisturbed flows keep their cached instant.
    fn predict(&mut self) {
        let now = self.now;
        for t in &mut self.transfers {
            if t.done {
                continue;
            }
            for f in &mut t.flows {
                if f.pred.is_some() || f.rate <= 0.0 {
                    continue;
                }
                let Some(c) = f.chunk else { continue };
                let rem = if f.coalesced {
                    let done_in_chunk = t.ledger.chunk_size(c) - f.rem_gb;
                    if done_in_chunk == 0.0 {
                        t.ledger.missing_gb()
                    } else {
                        t.ledger.missing_gb() - done_in_chunk
                    }
                } else {
                    f.rem_gb
                };
                let dt = if f.rate.is_infinite() {
                    0.0
                } else if f.at_path_cap {
                    // Legacy operand order: (delay * gb) * factor.
                    (f.src.delay_s_per_gb * rem) * f.src.factor
                } else {
                    rem / f.rate
                };
                f.pred = Some(now.after_secs(dt));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn src(node: usize, delay: f64) -> SourcePath {
        SourcePath {
            node,
            delay_s_per_gb: delay,
            factor: 1.0,
        }
    }

    fn engine(nic: f64) -> Engine {
        Engine::new(
            ChunkedConfig {
                nic_gb_per_s: nic,
                ..ChunkedConfig::default()
            },
            8,
        )
    }

    #[test]
    fn ledger_chunk_geometry() {
        let l = ChunkLedger::new(1.0, 0.25);
        assert_eq!(l.n_chunks(), 4);
        assert!((l.chunk_size(3) - 0.25).abs() < 1e-12);
        let l = ChunkLedger::new(1.1, 0.25);
        assert_eq!(l.n_chunks(), 5);
        assert!((l.chunk_size(4) - 0.1).abs() < 1e-12);
        let l = ChunkLedger::new(0.0, 0.25);
        assert_eq!(l.n_chunks(), 0);
        assert!(l.is_complete());
    }

    #[test]
    fn ledger_conserves_volume() {
        let mut l = ChunkLedger::new(3.3, 0.25);
        assert_eq!(l.missing_gb(), 3.3); // pristine: exact
        for c in 0..l.n_chunks() {
            assert!(l.mark_verified(c));
            assert!(!l.mark_verified(c)); // no double count
            let sum = l.verified_gb() + l.missing_gb();
            assert!((sum - 3.3).abs() < 1e-9, "leaked volume: {sum}");
        }
        assert!(l.is_complete());
        assert!((l.verified_gb() - 3.3).abs() < 1e-9);
    }

    #[test]
    fn single_flow_matches_legacy_duration() {
        // Legacy point-to-point: done = now + (delay * gb) * factor.
        let mut e = engine(2.5);
        let id = e.begin(
            t(0.0),
            1,
            FlowTier::Immediate,
            None,
            ChunkLedger::new(2.0, 0.25),
            &[src(0, 0.8)],
        );
        let (at, _) = e.next_event().unwrap();
        assert_eq!(at, SimTime::ZERO.after_secs((0.8 * 2.0) * 1.0));
        assert_eq!(e.advance(at), vec![id]);
        assert!(e.is_done(id));
    }

    #[test]
    fn zero_size_transfer_completes_immediately() {
        let mut e = engine(2.5);
        let id = e.begin(
            t(1.0),
            1,
            FlowTier::Immediate,
            None,
            ChunkLedger::new(0.0, 0.25),
            &[src(0, 0.8)],
        );
        assert_eq!(e.next_event().unwrap().0, t(1.0));
        assert_eq!(e.advance(t(1.0)), vec![id]);
    }

    #[test]
    fn fair_share_splits_a_common_egress_nic() {
        // Two fast paths (cap 10 GB/s) out of one 2.5 GB/s NIC: each flow
        // gets 1.25 GB/s, so 1.25 GB finishes at t = 1.0 for both.
        let mut e = engine(2.5);
        let a = e.begin(
            t(0.0),
            1,
            FlowTier::Immediate,
            None,
            ChunkLedger::new(1.25, 0.25),
            &[src(0, 0.1)],
        );
        let b = e.begin(
            t(0.0),
            2,
            FlowTier::Immediate,
            None,
            ChunkLedger::new(1.25, 0.25),
            &[src(0, 0.1)],
        );
        let done = e.advance(t(1.0));
        assert!(done.contains(&a) && done.contains(&b));
    }

    #[test]
    fn uncontended_nic_runs_each_flow_at_path_rate() {
        let mut e = engine(f64::INFINITY);
        let a = e.begin(
            t(0.0),
            1,
            FlowTier::Immediate,
            None,
            ChunkLedger::new(1.0, 0.25),
            &[src(0, 1.0)],
        );
        let b = e.begin(
            t(0.0),
            2,
            FlowTier::Immediate,
            None,
            ChunkLedger::new(1.0, 0.25),
            &[src(0, 1.0)],
        );
        let done = e.advance(t(1.0));
        assert!(done.contains(&a) && done.contains(&b));
    }

    #[test]
    fn strict_priority_preempts_background() {
        let mut e = engine(2.5);
        let bg = e.begin(
            t(0.0),
            1,
            FlowTier::Background,
            Some(0),
            ChunkLedger::new(2.5, 0.25),
            &[src(0, 0.1)],
        );
        let im = e.begin(
            t(0.0),
            2,
            FlowTier::Immediate,
            None,
            ChunkLedger::new(2.5, 0.25),
            &[src(0, 0.1)],
        );
        // Immediate takes the whole NIC: done at 1.0; background is
        // starved until then, then runs 2.5 GB/s: done at 2.0.
        assert_eq!(e.advance(t(1.0)), vec![im]);
        assert_eq!(e.advance(t(2.0)), vec![bg]);
    }

    #[test]
    fn scheduled_outranks_background() {
        let mut e = engine(2.5);
        let bg = e.begin(
            t(0.0),
            1,
            FlowTier::Background,
            Some(0),
            ChunkLedger::new(2.5, 0.25),
            &[src(0, 0.1)],
        );
        let sc = e.begin(
            t(0.0),
            2,
            FlowTier::Scheduled,
            None,
            ChunkLedger::new(2.5, 0.25),
            &[src(0, 0.1)],
        );
        assert_eq!(e.advance(t(1.0)), vec![sc]);
        assert_eq!(e.advance(t(2.0)), vec![bg]);
    }

    #[test]
    fn multi_source_aggregates_bandwidth() {
        // Two 1 GB/s paths into one dest with NIC 2.5: 4 GB in ~2 s
        // instead of the single-source 4 s.
        let mut e = engine(2.5);
        let id = e.begin(
            t(0.0),
            2,
            FlowTier::Background,
            Some(0),
            ChunkLedger::new(4.0, 0.25),
            &[src(0, 1.0), src(1, 1.0)],
        );
        let done = e.advance(t(2.0));
        assert_eq!(done, vec![id]);
    }

    #[test]
    fn rarest_first_diversifies_across_transfers() {
        let mut e = engine(2.5);
        let a = e.begin(
            t(0.0),
            1,
            FlowTier::Background,
            Some(7),
            ChunkLedger::new(1.0, 0.25),
            &[src(0, 1.0)],
        );
        let b = e.begin(
            t(0.0),
            2,
            FlowTier::Background,
            Some(7),
            ChunkLedger::new(1.0, 0.25),
            &[src(0, 1.0)],
        );
        // `a` is fetching chunk 0 and `b` (seeing 0 in flight) chunk 1;
        // each one's next pick avoids both in-flight chunks.
        assert_eq!(e.pick_chunk(b), Some(2));
        assert_eq!(e.pick_chunk(a), Some(2));
        let _ = (a, b);
    }

    #[test]
    fn resume_keeps_verified_chunks_and_conserves_volume() {
        let mut e = engine(2.5);
        let id = e.begin(
            t(0.0),
            1,
            FlowTier::Background,
            Some(3),
            ChunkLedger::new(2.0, 0.25),
            &[src(0, 1.0)],
        );
        // 1 GB/s path; cancel at 0.6 s: chunks 0 and 1 (0.5 GB) verified,
        // the 0.1 GB partial of chunk 2 is lost.
        let ledger = e.cancel(t(0.6), id);
        assert_eq!(ledger.verified_count(), 2);
        assert!((ledger.verified_gb() - 0.5).abs() < 1e-9);
        let moved_before = ledger.verified_gb();
        // Resume later from the same ledger: only the missing 1.5 GB move.
        let id2 = e.begin(t(10.0), 1, FlowTier::Background, Some(3), ledger, &[src(0, 1.0)]);
        let (at, _) = e.next_event().unwrap();
        assert_eq!(at, t(10.0).after_secs((1.0 * 1.5) * 1.0));
        assert_eq!(e.advance(at), vec![id2]);
        assert!((moved_before + 1.5 - 2.0).abs() < 1e-9);
        assert!((e.verified_gb(id2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dropped_source_loses_only_the_partial_chunk() {
        let mut e = engine(2.5);
        let id = e.begin(
            t(0.0),
            2,
            FlowTier::Background,
            Some(0),
            ChunkLedger::new(2.0, 0.25),
            &[src(0, 1.0), src(1, 1.0)],
        );
        // Mid-chunk, drop source 1: its partial chunk returns to the
        // missing pool; the transfer still completes with exactly 2 GB.
        e.set_sources(t(0.1), id, &[src(0, 1.0)]);
        let mut done = Vec::new();
        let mut guard = 0;
        while !e.is_done(id) {
            let (at, _) = e.next_event().expect("transfer must keep progressing");
            done.extend(e.advance(at));
            guard += 1;
            assert!(guard < 100, "no forward progress");
        }
        assert_eq!(done, vec![id]);
        assert!((e.verified_gb(id) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn waterfill_recompute_is_deterministic() {
        // The fair-share satellite: identical op sequences produce
        // bitwise-identical schedules (event instants and generations).
        let script = |e: &mut Engine| -> Vec<(u64, u64)> {
            let mut out = Vec::new();
            let a = e.begin(
                t(0.0),
                1,
                FlowTier::Immediate,
                None,
                ChunkLedger::new(1.7, 0.25),
                &[src(0, 0.4)],
            );
            let _b = e.begin(
                t(0.1),
                2,
                FlowTier::Background,
                Some(4),
                ChunkLedger::new(3.0, 0.25),
                &[src(0, 0.5), src(3, 0.9)],
            );
            let c = e.begin(
                t(0.2),
                3,
                FlowTier::Scheduled,
                Some(4),
                ChunkLedger::new(2.0, 0.25),
                &[src(3, 0.7)],
            );
            e.set_sources(t(0.3), c, &[src(3, 0.7), src(1, 1.1)]);
            let _ = e.cancel(t(0.9), a);
            for _ in 0..40 {
                let Some((at, generation)) = e.next_event() else { break };
                out.push((at.0, generation));
                e.advance(at);
            }
            out
        };
        let mut e1 = engine(2.5);
        let mut e2 = engine(2.5);
        assert_eq!(script(&mut e1), script(&mut e2));
        assert_eq!(e1.generation(), e2.generation());
    }

    #[test]
    fn stalled_background_flow_has_no_event_until_preemption_ends() {
        let mut e = engine(2.5);
        let _im = e.begin(
            t(0.0),
            1,
            FlowTier::Immediate,
            None,
            ChunkLedger::new(5.0, 0.25),
            &[src(0, 0.1)],
        );
        let bg = e.begin(
            t(0.0),
            2,
            FlowTier::Background,
            Some(0),
            ChunkLedger::new(1.0, 0.25),
            &[src(0, 0.1)],
        );
        // Only the immediate flow predicts an event (bg rate is 0).
        let (at, _) = e.next_event().unwrap();
        assert_eq!(at, SimTime::ZERO.after_secs(2.0));
        let done = e.advance(at);
        assert_eq!(done.len(), 1);
        assert!(!e.is_done(bg));
        // After preemption ends the background flow finishes 1 GB at 2.5.
        let (at2, _) = e.next_event().unwrap();
        assert_eq!(e.advance(at2), vec![bg]);
    }
}
