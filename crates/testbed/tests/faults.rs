//! Fault-injection tests: node failures, replica failover, and the
//! availability value of `K > 1`.

use edgerep_core::appro::ApproG;
use edgerep_model::ComputeNodeId;
use edgerep_testbed::sim::{run_testbed_with_faults, NodeFailure};
use edgerep_testbed::{build_testbed_instance, run_testbed, SimConfig, TestbedConfig};

fn world(k: usize, seed: u64) -> edgerep_testbed::TestbedWorld {
    let cfg = TestbedConfig {
        query_count: 30,
        windows: 6,
        trace: edgerep_workload::mobile_trace::TraceConfig {
            users: 200,
            apps: 30,
            days: 10,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_max_replicas(k);
    build_testbed_instance(&cfg, seed)
}

#[test]
fn no_faults_no_fault_accounting() {
    let w = world(3, 1);
    let report = run_testbed(&ApproG::default(), &w, &SimConfig::default());
    assert_eq!(report.failovers, 0);
    assert_eq!(report.queries_lost_to_faults, 0);
}

#[test]
fn early_fault_never_increases_admissions() {
    let w = world(3, 2);
    let sim = SimConfig::default();
    let clean = run_testbed(&ApproG::default(), &w, &sim);
    // Kill the busiest cloudlet before any query arrives.
    let loads = clean.plan.node_loads(&w.instance);
    let busiest = loads
        .iter()
        .enumerate()
        .skip(4) // skip the DC VMs; cloudlets carry the edge load
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| ComputeNodeId(i as u32))
        .unwrap();
    let faulty = run_testbed_with_faults(
        &ApproG::default(),
        &w,
        &sim,
        &[NodeFailure {
            node: busiest,
            at_s: 0.0,
        }],
    );
    assert!(faulty.measured_admitted <= clean.measured_admitted);
    assert!(faulty.measured_volume <= clean.measured_volume + 1e-9);
    // Something was affected: failovers happened or queries were lost
    // (the busiest cloudlet served work in the clean run).
    assert!(
        faulty.failovers > 0 || faulty.queries_lost_to_faults > 0,
        "killing the busiest node must affect something"
    );
}

#[test]
fn replication_enables_failover() {
    // With K = 1 a failed node's datasets are simply gone; with K = 3
    // arriving queries can fail over. Aggregated over seeds to dodge
    // per-topology noise.
    let mut lost_k1 = 0usize;
    let mut lost_k3 = 0usize;
    let mut failovers_k3 = 0usize;
    for seed in 0..6u64 {
        for (k, lost, fo) in [
            (1usize, &mut lost_k1, None),
            (3, &mut lost_k3, Some(&mut failovers_k3)),
        ] {
            let w = world(k, seed);
            let fault = NodeFailure {
                node: ComputeNodeId(4), // first cloudlet VM
                at_s: 0.0,
            };
            let report = run_testbed_with_faults(
                &ApproG::default(),
                &w,
                &SimConfig {
                    seed,
                    ..Default::default()
                },
                &[fault],
            );
            *lost += report.queries_lost_to_faults;
            if let Some(fo) = fo {
                *fo += report.failovers;
            }
        }
    }
    assert!(
        failovers_k3 > 0,
        "K = 3 should produce at least one successful failover across 6 seeds"
    );
    assert!(
        lost_k3 <= lost_k1,
        "more replicas must not lose more queries ({lost_k3} vs {lost_k1})"
    );
}

#[test]
fn mid_run_fault_poisons_in_flight_queries() {
    let w = world(3, 5);
    // Storm arrivals so plenty of work is in flight, then kill a cloudlet
    // mid-run.
    let sim = SimConfig {
        arrival_rate_per_s: 100.0,
        ..Default::default()
    };
    let clean = run_testbed(&ApproG::default(), &w, &sim);
    let faults: Vec<NodeFailure> = (4..8)
        .map(|i| NodeFailure {
            node: ComputeNodeId(i),
            at_s: 0.05,
        })
        .collect();
    let faulty = run_testbed_with_faults(&ApproG::default(), &w, &sim, &faults);
    assert!(faulty.measured_admitted <= clean.measured_admitted);
    // Accounting stays coherent.
    assert!(faulty.queries_lost_to_faults + faulty.answers.len() <= faulty.total_queries);
}

#[test]
fn all_nodes_down_loses_everything() {
    let w = world(2, 7);
    let faults: Vec<NodeFailure> = w
        .instance
        .cloud()
        .compute_ids()
        .map(|v| NodeFailure { node: v, at_s: 0.0 })
        .collect();
    let report = run_testbed_with_faults(&ApproG::default(), &w, &SimConfig::default(), &faults);
    assert_eq!(report.measured_admitted, 0);
    assert_eq!(report.answers.len(), 0);
    assert_eq!(
        report.queries_lost_to_faults, report.planned_admitted,
        "every planned query is lost when the whole fleet is down"
    );
}

#[test]
#[should_panic(expected = "unknown node")]
fn fault_on_unknown_node_rejected() {
    let w = world(2, 8);
    run_testbed_with_faults(
        &ApproG::default(),
        &w,
        &SimConfig::default(),
        &[NodeFailure {
            node: ComputeNodeId(999),
            at_s: 1.0,
        }],
    );
}
