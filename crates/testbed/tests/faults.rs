//! Fault-injection tests: node failures, replica failover, and the
//! availability value of `K > 1`.

use edgerep_core::appro::ApproG;
use edgerep_model::ComputeNodeId;
use edgerep_testbed::sim::{run_testbed_with_faults, NodeFailure};
use edgerep_testbed::{build_testbed_instance, run_testbed, SimConfig, TestbedConfig};

fn world(k: usize, seed: u64) -> edgerep_testbed::TestbedWorld {
    let cfg = TestbedConfig {
        query_count: 30,
        windows: 6,
        trace: edgerep_workload::mobile_trace::TraceConfig {
            users: 200,
            apps: 30,
            days: 10,
            ..Default::default()
        },
        ..Default::default()
    }
    .with_max_replicas(k);
    build_testbed_instance(&cfg, seed)
}

#[test]
fn no_faults_no_fault_accounting() {
    let w = world(3, 1);
    let report = run_testbed(&ApproG::default(), &w, &SimConfig::default());
    assert_eq!(report.failovers, 0);
    assert_eq!(report.queries_lost_to_faults, 0);
}

#[test]
fn early_fault_never_increases_admissions() {
    let w = world(3, 2);
    let sim = SimConfig::default();
    let clean = run_testbed(&ApproG::default(), &w, &sim);
    // Kill the busiest cloudlet before any query arrives.
    let loads = clean.plan.node_loads(&w.instance);
    let busiest = loads
        .iter()
        .enumerate()
        .skip(4) // skip the DC VMs; cloudlets carry the edge load
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| ComputeNodeId(i as u32))
        .unwrap();
    let faulty = run_testbed_with_faults(
        &ApproG::default(),
        &w,
        &sim,
        &[NodeFailure {
            node: busiest,
            at_s: 0.0,
        }],
    );
    assert!(faulty.measured_admitted <= clean.measured_admitted);
    assert!(faulty.measured_volume <= clean.measured_volume + 1e-9);
    // Something was affected: failovers happened or queries were lost
    // (the busiest cloudlet served work in the clean run).
    assert!(
        faulty.failovers > 0 || faulty.queries_lost_to_faults > 0,
        "killing the busiest node must affect something"
    );
}

#[test]
fn replication_enables_failover() {
    // With K = 1 a failed node's datasets are simply gone; with K = 3
    // arriving queries can fail over. Aggregated over seeds to dodge
    // per-topology noise.
    let mut lost_k1 = 0usize;
    let mut lost_k3 = 0usize;
    let mut failovers_k3 = 0usize;
    for seed in 0..6u64 {
        for (k, lost, fo) in [
            (1usize, &mut lost_k1, None),
            (3, &mut lost_k3, Some(&mut failovers_k3)),
        ] {
            let w = world(k, seed);
            let fault = NodeFailure {
                node: ComputeNodeId(4), // first cloudlet VM
                at_s: 0.0,
            };
            let report = run_testbed_with_faults(
                &ApproG::default(),
                &w,
                &SimConfig {
                    seed,
                    ..Default::default()
                },
                &[fault],
            );
            *lost += report.queries_lost_to_faults;
            if let Some(fo) = fo {
                *fo += report.failovers;
            }
        }
    }
    assert!(
        failovers_k3 > 0,
        "K = 3 should produce at least one successful failover across 6 seeds"
    );
    assert!(
        lost_k3 <= lost_k1,
        "more replicas must not lose more queries ({lost_k3} vs {lost_k1})"
    );
}

#[test]
fn mid_run_fault_poisons_in_flight_queries() {
    let w = world(3, 5);
    // Storm arrivals so plenty of work is in flight, then kill a cloudlet
    // mid-run.
    let sim = SimConfig {
        arrival_rate_per_s: 100.0,
        ..Default::default()
    };
    let clean = run_testbed(&ApproG::default(), &w, &sim);
    let faults: Vec<NodeFailure> = (4..8)
        .map(|i| NodeFailure {
            node: ComputeNodeId(i),
            at_s: 0.05,
        })
        .collect();
    let faulty = run_testbed_with_faults(&ApproG::default(), &w, &sim, &faults);
    assert!(faulty.measured_admitted <= clean.measured_admitted);
    // Accounting stays coherent.
    assert!(faulty.queries_lost_to_faults + faulty.answers.len() <= faulty.total_queries);
}

#[test]
fn all_nodes_down_loses_everything() {
    let w = world(2, 7);
    let faults: Vec<NodeFailure> = w
        .instance
        .cloud()
        .compute_ids()
        .map(|v| NodeFailure { node: v, at_s: 0.0 })
        .collect();
    let report = run_testbed_with_faults(&ApproG::default(), &w, &SimConfig::default(), &faults);
    assert_eq!(report.measured_admitted, 0);
    assert_eq!(report.answers.len(), 0);
    assert_eq!(
        report.queries_lost_to_faults, report.planned_admitted,
        "every planned query is lost when the whole fleet is down"
    );
}

// ---------------------------------------------------------------------
// Property tests over generated fault plans (plain loops: the harness
// must hold for every seed, not a sampled subset).
// ---------------------------------------------------------------------

use edgerep_testbed::{try_run_testbed_with_plan, FaultConfig, FaultPlan};

/// 50+ seeded MTBF/MTTR plans — node flapping, link degradation and
/// partitions — through the simulator with repair off and on: no code
/// path may panic, accounting must stay coherent, and the live plan must
/// never over-replicate.
#[test]
fn generated_plans_never_panic_and_stay_coherent() {
    let mut plans = 0usize;
    for seed in 0..25u64 {
        let k = 1 + (seed as usize % 4);
        let w = world(k, seed);
        let nodes = w.instance.cloud().compute_count();
        for fraction in [0.15, 0.35] {
            let plan = FaultConfig {
                link_fraction: 0.1,
                link_mtbf_s: 50.0,
                link_mttr_s: 20.0,
                ..Default::default()
            }
            .with_node_fraction(fraction)
            .with_seed(seed * 31 + (fraction * 100.0) as u64)
            .generate(nodes);
            plans += 1;
            for repair in [false, true] {
                let sim = SimConfig {
                    seed,
                    repair,
                    ..Default::default()
                };
                let report = try_run_testbed_with_plan(&ApproG::default(), &w, &sim, &plan)
                    .expect("generated plans validate");
                // Conservation: every planned query is met, lost, or
                // simply late — never double-counted.
                assert!(report.measured_admitted <= report.planned_admitted);
                assert!(report.measured_volume <= report.planned_volume + 1e-9);
                assert!(
                    report.answers.len() + report.queries_lost_to_faults <= report.total_queries
                );
                assert!(report.queries_lost_to_faults <= report.planned_admitted);
                assert!((0.0..=1.0).contains(&report.availability));
                assert!(report.repairs_completed <= report.repairs_scheduled);
                assert!(report.repair_gb >= 0.0 && report.node_downtime_s >= 0.0);
                // Repair never over-replicates past the budget K.
                for d in w.instance.dataset_ids() {
                    assert!(
                        report.live_plan.replica_count(d) <= w.instance.max_replicas(),
                        "dataset {d:?} over-replicated (seed {seed}, repair {repair})"
                    );
                }
            }
        }
    }
    assert!(plans >= 50, "property sweep must cover at least 50 plans");
}

/// Identical (seed, plan, config) runs produce identical reports.
#[test]
fn fault_runs_are_deterministic() {
    let w = world(3, 11);
    let plan = FaultConfig::default()
        .with_node_fraction(0.3)
        .with_seed(11)
        .generate(w.instance.cloud().compute_count());
    let sim = SimConfig {
        seed: 11,
        repair: true,
        ..Default::default()
    };
    let a = try_run_testbed_with_plan(&ApproG::default(), &w, &sim, &plan).unwrap();
    let b = try_run_testbed_with_plan(&ApproG::default(), &w, &sim, &plan).unwrap();
    assert_eq!(a.measured_volume, b.measured_volume);
    assert_eq!(a.measured_admitted, b.measured_admitted);
    assert_eq!(a.failovers, b.failovers);
    assert_eq!(a.queries_lost_to_faults, b.queries_lost_to_faults);
    assert_eq!(a.repairs_scheduled, b.repairs_scheduled);
    assert_eq!(a.repairs_completed, b.repairs_completed);
    assert_eq!(a.repair_gb, b.repair_gb);
    assert_eq!(a.repair_retries, b.repair_retries);
    assert_eq!(a.transfer_retries, b.transfer_retries);
    assert_eq!(a.node_downtime_s, b.node_downtime_s);
    assert_eq!(a.availability, b.availability);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.live_plan, b.live_plan);
    assert_eq!(a.answers.len(), b.answers.len());
}

/// A permanent node loss with repair enabled ends the run with at least
/// as many replicas standing as the repair-disabled run — the controller
/// restored what the fault destroyed.
#[test]
fn repair_restores_replicas_lost_to_a_permanent_outage() {
    let w = world(3, 13);
    let sim_off = SimConfig::default();
    let clean = run_testbed(&ApproG::default(), &w, &sim_off);
    // Kill the busiest replica-holding cloudlet permanently at t = 1 s.
    let mut holders = vec![0usize; w.instance.cloud().compute_count()];
    for d in w.instance.dataset_ids() {
        for v in clean.plan.replicas_of(d) {
            holders[v.index()] += 1;
        }
    }
    let victim = holders
        .iter()
        .enumerate()
        .skip(4)
        .max_by_key(|(_, c)| **c)
        .map(|(i, _)| ComputeNodeId(i as u32))
        .unwrap();
    assert!(holders[victim.index()] > 0);
    let plan = FaultPlan {
        node_outages: vec![edgerep_testbed::NodeOutage {
            node: victim,
            down_at_s: 1.0,
            up_at_s: None,
        }],
        link_faults: Vec::new(),
    };
    let count_sum = |r: &edgerep_testbed::TestbedReport| -> usize {
        w.instance
            .dataset_ids()
            .map(|d| r.live_plan.replica_count(d))
            .sum()
    };
    let off = try_run_testbed_with_plan(&ApproG::default(), &w, &sim_off, &plan).unwrap();
    let on = try_run_testbed_with_plan(
        &ApproG::default(),
        &w,
        &SimConfig {
            repair: true,
            ..Default::default()
        },
        &plan,
    )
    .unwrap();
    assert!(on.repairs_completed > 0, "repair must have acted");
    assert!(
        count_sum(&on) > count_sum(&off),
        "repair must restore replicas a permanent outage destroyed"
    );
    for d in w.instance.dataset_ids() {
        assert!(on.live_plan.replica_count(d) <= w.instance.max_replicas());
    }
}

/// An empty fault plan reproduces the fault-free runner field-for-field:
/// the fault machinery is provably inert on the happy path.
#[test]
fn zero_fault_plan_reproduces_clean_run_exactly() {
    let w = world(2, 17);
    let sim = SimConfig {
        repair: true, // even with repair armed there is nothing to repair
        ..Default::default()
    };
    let clean = run_testbed(&ApproG::default(), &w, &sim);
    let faulted =
        try_run_testbed_with_plan(&ApproG::default(), &w, &sim, &FaultPlan::empty()).unwrap();
    assert_eq!(clean.measured_volume, faulted.measured_volume);
    assert_eq!(clean.measured_admitted, faulted.measured_admitted);
    assert_eq!(clean.planned_volume, faulted.planned_volume);
    assert_eq!(clean.mean_response_s, faulted.mean_response_s);
    assert_eq!(clean.p95_response_s, faulted.p95_response_s);
    assert_eq!(clean.max_response_s, faulted.max_response_s);
    assert_eq!(clean.mean_queue_wait_s, faulted.mean_queue_wait_s);
    assert_eq!(clean.mean_transfer_s, faulted.mean_transfer_s);
    assert_eq!(clean.events_processed, faulted.events_processed);
    assert_eq!(clean.failovers, faulted.failovers);
    assert_eq!(clean.queries_lost_to_faults, faulted.queries_lost_to_faults);
    assert_eq!(clean.repairs_scheduled, 0);
    assert_eq!(faulted.repairs_scheduled, 0);
    assert_eq!(clean.node_downtime_s, 0.0);
    assert_eq!(faulted.node_downtime_s, 0.0);
    assert_eq!(clean.availability, 1.0);
    assert_eq!(faulted.availability, 1.0);
    assert_eq!(clean.plan, faulted.plan);
    assert_eq!(clean.live_plan, faulted.live_plan);
    assert_eq!(clean.answers, faulted.answers);
}

// ---------------------------------------------------------------------
// The chunked, resumable multi-source transfer engine under faults.
// ---------------------------------------------------------------------

use edgerep_testbed::{ChunkedConfig, TransferModel};

fn chunked_sim(seed: u64, repair: bool) -> SimConfig {
    SimConfig {
        seed,
        repair,
        transfer: TransferModel::Chunked(ChunkedConfig::default()),
        // Uncontended NICs: both engines run identical path physics, so
        // any divergence is purely fault-handling (resume/multi-source).
        nic_contention: false,
        ..Default::default()
    }
}

/// Seeded MTBF/MTTR plans through the chunked engine: no panic, coherent
/// accounting, and resume bookkeeping that never invents bytes — saved
/// chunk volume exists only when a transfer actually resumed.
#[test]
fn chunked_generated_plans_stay_coherent_and_conserve_resume_volume() {
    let mut resumes_total = 0usize;
    for seed in 0..10u64 {
        let k = 1 + (seed as usize % 4);
        let w = world(k, seed);
        let nodes = w.instance.cloud().compute_count();
        let plan = FaultConfig {
            link_fraction: 0.1,
            link_mtbf_s: 50.0,
            link_mttr_s: 20.0,
            ..Default::default()
        }
        .with_node_fraction(0.35)
        .with_seed(seed * 31)
        .generate(nodes);
        let report =
            try_run_testbed_with_plan(&ApproG::default(), &w, &chunked_sim(seed, true), &plan)
                .expect("generated plans validate");
        assert!(report.measured_admitted <= report.planned_admitted);
        assert!(report.measured_volume <= report.planned_volume + 1e-9);
        assert!(report.answers.len() + report.queries_lost_to_faults <= report.total_queries);
        assert!((0.0..=1.0).contains(&report.availability));
        assert!(report.repairs_completed <= report.repairs_scheduled);
        // Resume conservation: bytes saved only by transfers that
        // actually resumed, and durations/tier means stay sane.
        assert!(report.chunk_gb_saved >= 0.0 && report.chunk_gb_saved.is_finite());
        if report.transfer_resumes == 0 {
            assert_eq!(report.chunk_gb_saved, 0.0);
        }
        assert!(report.repair_completion_mean_s >= 0.0);
        for t in report.tier_completion_mean_s {
            assert!(t >= 0.0 && t.is_finite());
        }
        resumes_total += report.transfer_resumes;
        for d in w.instance.dataset_ids() {
            assert!(report.live_plan.replica_count(d) <= w.instance.max_replicas());
        }
    }
    assert!(
        resumes_total > 0,
        "a 10-seed 35%-fraction sweep must interrupt at least one transfer"
    );
}

/// Chunked fault runs are deterministic, including the new accounting.
#[test]
fn chunked_fault_runs_are_deterministic() {
    let w = world(3, 11);
    let plan = FaultConfig::default()
        .with_node_fraction(0.3)
        .with_seed(11)
        .generate(w.instance.cloud().compute_count());
    let sim = chunked_sim(11, true);
    let a = try_run_testbed_with_plan(&ApproG::default(), &w, &sim, &plan).unwrap();
    let b = try_run_testbed_with_plan(&ApproG::default(), &w, &sim, &plan).unwrap();
    assert_eq!(a.measured_volume, b.measured_volume);
    assert_eq!(a.measured_admitted, b.measured_admitted);
    assert_eq!(a.availability, b.availability);
    assert_eq!(a.transfer_resumes, b.transfer_resumes);
    assert_eq!(a.chunk_gb_saved, b.chunk_gb_saved);
    assert_eq!(a.abandoned_dead_source, b.abandoned_dead_source);
    assert_eq!(a.abandoned_partitioned, b.abandoned_partitioned);
    assert_eq!(a.repair_completion_mean_s, b.repair_completion_mean_s);
    assert_eq!(a.tier_completion_mean_s, b.tier_completion_mean_s);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.live_plan, b.live_plan);
}

/// The PR's acceptance pin: under the same seeded transient fault plans
/// (40% of nodes fault-prone, K = 3), the chunked engine's availability
/// is no worse than point-to-point and its mean repair completion time
/// is no slower, aggregated over three seeds — resume plus multi-source
/// swarm can only help.
#[test]
fn chunked_repair_no_worse_than_p2p_under_transient_faults() {
    let mut p2p_avail = 0.0;
    let mut ch_avail = 0.0;
    let mut p2p_repair_s = 0.0;
    let mut ch_repair_s = 0.0;
    let mut repairs = 0usize;
    for seed in 0..3u64 {
        let w = world(3, seed);
        let plan = FaultConfig::default()
            .with_node_fraction(0.4)
            .with_seed(seed)
            .generate(w.instance.cloud().compute_count());
        let p2p_cfg = SimConfig {
            seed,
            repair: true,
            nic_contention: false,
            ..Default::default()
        };
        let p2p = try_run_testbed_with_plan(&ApproG::default(), &w, &p2p_cfg, &plan).unwrap();
        let ch =
            try_run_testbed_with_plan(&ApproG::default(), &w, &chunked_sim(seed, true), &plan)
                .unwrap();
        p2p_avail += p2p.availability;
        ch_avail += ch.availability;
        p2p_repair_s += p2p.repair_completion_mean_s;
        ch_repair_s += ch.repair_completion_mean_s;
        repairs += ch.repairs_completed;
    }
    assert!(repairs > 0, "the scenario must exercise repair");
    assert!(
        ch_avail >= p2p_avail - 1e-9,
        "chunked availability {ch_avail} below p2p {p2p_avail}"
    );
    assert!(
        ch_repair_s <= p2p_repair_s + 1e-9,
        "chunked repair completion {ch_repair_s} slower than p2p {p2p_repair_s}"
    );
}

/// A correlated region storm over background MTBF noise interrupts
/// enough transfers that every interruption outcome fires in one run:
/// resume (short outage, partial chunks kept), dead-source abandonment
/// (no live holder through the retry budget), and partitioned
/// abandonment (region isolation outlives the budget). The contended
/// slow NIC stretches flows so bursts catch them mid-air — the same
/// ingredients the `--storm` figure and the `scripts/ci.sh` trace
/// smoke rely on.
#[test]
fn storms_force_resumes_and_abandonments() {
    let w = world(1, 9);
    let nodes = w.instance.cloud().compute_count();
    // DC VMs 0-3 are their own regions; cloudlets form racks of four.
    let regions: Vec<u32> = (0..nodes)
        .map(|i| if i < 4 { i as u32 } else { 4 + ((i - 4) / 4) as u32 })
        .collect();
    let plan = FaultConfig {
        node_mtbf_s: 40.0,
        node_mttr_s: 30.0,
        ..Default::default()
    }
    .with_node_fraction(0.3)
    .with_storms(2)
    .with_seed(9)
    .generate_with_regions(&regions);
    let sim = SimConfig {
        seed: 9,
        repair: true,
        transfer: TransferModel::Chunked(ChunkedConfig {
            nic_gb_per_s: 0.05,
            ..Default::default()
        }),
        nic_contention: true,
        ..Default::default()
    };
    let report = try_run_testbed_with_plan(&ApproG::default(), &w, &sim, &plan).unwrap();
    assert!(
        report.transfer_resumes > 0,
        "a short outage must park and resume at least one chunked transfer"
    );
    assert!(report.chunk_gb_saved > 0.0, "resumed chunks must be kept");
    assert!(
        report.abandoned_dead_source > 0,
        "losing every holder through the retry budget must abandon"
    );
    assert!(
        report.abandoned_partitioned > 0,
        "a 150 s isolation outlives the retry budget: something must abandon"
    );
    assert!((0.0..=1.0).contains(&report.availability));
}

#[test]
#[should_panic(expected = "unknown node")]
fn fault_on_unknown_node_rejected() {
    let w = world(2, 8);
    run_testbed_with_faults(
        &ApproG::default(),
        &w,
        &SimConfig::default(),
        &[NodeFailure {
            node: ComputeNodeId(999),
            at_s: 1.0,
        }],
    );
}
