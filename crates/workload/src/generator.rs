//! Seeded random instance generation.
//!
//! Draws a two-tier edge cloud (GT-ITM-style: every node pair linked with
//! the configured probability; links touching a data center model Internet
//! paths with higher delay), then datasets and queries with the paper's
//! distributions. The same seed always produces the same instance, so the
//! experiment harness can evaluate all algorithms on identical topologies.

use edgerep_graph::connectivity::{connect_components, is_connected};
use edgerep_graph::NodeId;
use edgerep_model::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::params::{Range, TopologyModel, WorkloadParams};

fn draw<R: Rng>(rng: &mut R, (lo, hi): Range) -> f64 {
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

fn draw_int<R: Rng>(rng: &mut R, (lo, hi): (usize, usize)) -> usize {
    rng.gen_range(lo..=hi)
}

/// Generates one instance from `params` and a seed.
///
/// # Panics
/// Panics if `params` fails [`WorkloadParams::validate`].
pub fn generate_instance(params: &WorkloadParams, seed: u64) -> Instance {
    params.validate();
    let mut rng = SmallRng::seed_from_u64(seed);

    // --- Topology ------------------------------------------------------
    let mut builder = EdgeCloudBuilder::new();
    let mut dc_ids = Vec::with_capacity(params.data_centers);
    for _ in 0..params.data_centers {
        dc_ids.push(builder.add_data_center(
            draw(&mut rng, params.dc_capacity),
            draw(&mut rng, params.dc_proc_delay),
        ));
    }
    let mut cl_ids = Vec::with_capacity(params.cloudlets);
    for _ in 0..params.cloudlets {
        cl_ids.push(builder.add_cloudlet(
            draw(&mut rng, params.cloudlet_capacity),
            draw(&mut rng, params.cloudlet_proc_delay),
        ));
    }
    let mut graph_nodes: Vec<(NodeId, bool)> = Vec::new(); // (node, is_dc)
    for &dc in &dc_ids {
        graph_nodes.push((builder.graph_node(dc), true));
    }
    for &cl in &cl_ids {
        graph_nodes.push((builder.graph_node(cl), false));
    }
    for _ in 0..params.switches {
        graph_nodes.push((builder.add_switch(), false));
    }
    match params.topology {
        TopologyModel::FlatRandom => {
            // GT-ITM flat model: each pair linked with probability 0.2
            // (§4.1); links that touch a data center are Internet paths.
            for i in 0..graph_nodes.len() {
                for j in (i + 1)..graph_nodes.len() {
                    if rng.gen_bool(params.link_probability) {
                        let internet = graph_nodes[i].1 || graph_nodes[j].1;
                        let delay = draw(
                            &mut rng,
                            if internet {
                                params.internet_link_delay
                            } else {
                                params.wman_link_delay
                            },
                        );
                        builder.link_graph(graph_nodes[i].0, graph_nodes[j].0, delay);
                    }
                }
            }
        }
        TopologyModel::TransitStub => {
            // GT-ITM transit-stub: switches are the transit core (dense,
            // fast), cloudlets form stub domains hanging off one transit
            // node each, DCs reach the core over Internet links.
            let transit: Vec<NodeId> = graph_nodes
                .iter()
                .skip(params.data_centers + params.cloudlets)
                .map(|&(n, _)| n)
                .collect();
            debug_assert_eq!(transit.len(), params.switches);
            // Dense core: ring + chords with p = 0.6.
            for i in 0..transit.len() {
                let j = (i + 1) % transit.len();
                if transit.len() > 1 && i != j {
                    builder.link_graph(
                        transit[i],
                        transit[j],
                        draw(&mut rng, params.wman_link_delay),
                    );
                }
                for k in (i + 2)..transit.len() {
                    if rng.gen_bool(0.6) {
                        builder.link_graph(
                            transit[i],
                            transit[k],
                            draw(&mut rng, params.wman_link_delay),
                        );
                    }
                }
            }
            // Stub domains: cloudlets split round-robin over transit
            // nodes; intra-stub ER(0.4) plus one uplink per cloudlet.
            let stubs = transit.len().max(1);
            let mut domains: Vec<Vec<NodeId>> = vec![Vec::new(); stubs];
            for (i, &cl) in cl_ids.iter().enumerate() {
                domains[i % stubs].push(builder.graph_node(cl));
            }
            for (si, domain) in domains.iter().enumerate() {
                for i in 0..domain.len() {
                    for j in (i + 1)..domain.len() {
                        if rng.gen_bool(0.4) {
                            builder.link_graph(
                                domain[i],
                                domain[j],
                                draw(&mut rng, params.wman_link_delay),
                            );
                        }
                    }
                    if !transit.is_empty() {
                        builder.link_graph(
                            domain[i],
                            transit[si % transit.len()],
                            draw(&mut rng, params.wman_link_delay),
                        );
                    }
                }
            }
            // DCs attach to one or two random transit nodes via Internet.
            for &dc in &dc_ids {
                let uplinks = if transit.len() > 1 && rng.gen_bool(0.5) {
                    2
                } else {
                    1
                };
                for u in 0..uplinks.min(transit.len().max(1)) {
                    if transit.is_empty() {
                        break;
                    }
                    let t = transit[(rng.gen_range(0..transit.len()) + u) % transit.len()];
                    builder.link_graph(
                        builder.graph_node(dc),
                        t,
                        draw(&mut rng, params.internet_link_delay),
                    );
                }
            }
        }
    }
    // Base stations: routing-only leaves attached to a random cloudlet
    // (Fig. 1's access tier). They lengthen some paths but host nothing.
    for _ in 0..params.base_stations {
        let bs = builder.add_base_station();
        // Attach to a random cloudlet, or to a data center's graph node
        // in the degenerate cloudlet-free configuration.
        let attach = if cl_ids.is_empty() {
            builder.graph_node(dc_ids[rng.gen_range(0..dc_ids.len())])
        } else {
            builder.graph_node(cl_ids[rng.gen_range(0..cl_ids.len())])
        };
        builder.link_graph(bs, attach, draw(&mut rng, params.wman_link_delay));
    }

    // Never hand a partitioned network to the experiments (repairs use
    // Internet-class delays: the bridge is a long-haul path).
    {
        // Work on the builder's graph through a rebuild: EdgeCloudBuilder
        // owns its graph, so repair after build would be awkward. Instead
        // check connectivity on a clone of the adjacency built so far.
        // `EdgeCloudBuilder` exposes `link_graph`, so we repair by drawing
        // bridges between components found on a scratch copy.
        let scratch = builder.clone().build().expect("builder is valid");
        if !is_connected(scratch.graph()) {
            let mut g = scratch.graph().clone();
            let before = g.edge_count();
            connect_components(&mut g, &mut rng, params.internet_link_delay);
            for e in &g.edges()[before..] {
                builder.link_graph(e.u, e.v, e.weight);
            }
        }
    }
    let cloud = builder.build().expect("generated cloud is valid");

    // --- Datasets --------------------------------------------------------
    let dataset_count = draw_int(&mut rng, params.dataset_count);
    let compute_ids: Vec<ComputeNodeId> = cloud.compute_ids().collect();
    let dc_compute: Vec<ComputeNodeId> = dc_ids.clone();
    let cl_compute: Vec<ComputeNodeId> = cl_ids.clone();
    let mut ib = InstanceBuilder::new(cloud, params.max_replicas);
    for _ in 0..dataset_count {
        // Big data is generated by services in remote DCs and at cloudlets
        // (§2.2); bias origins toward DCs where legacy services live.
        let origin = if !dc_compute.is_empty() && (cl_compute.is_empty() || rng.gen_bool(0.7)) {
            dc_compute[rng.gen_range(0..dc_compute.len())]
        } else {
            cl_compute[rng.gen_range(0..cl_compute.len())]
        };
        ib.add_dataset(draw(&mut rng, params.dataset_volume), origin);
    }

    // --- Queries ---------------------------------------------------------
    let query_count = draw_int(&mut rng, params.query_count);
    // Shared scratch for distinct-dataset sampling. Allocating a fresh
    // id pool per query costs O(|Q| · |S|) — quadratic once queries and
    // datasets scale together (`with_scale`). Instead the pool is built
    // once and each query's partial Fisher-Yates swaps are undone in
    // reverse afterwards (a swap is its own inverse), restoring the
    // identity permutation; the RNG stream and the chosen datasets are
    // byte-identical to the per-query-allocation code.
    let mut pool: Vec<u32> = (0..dataset_count as u32).collect();
    let mut swaps: Vec<(usize, usize)> = Vec::new();
    for _ in 0..query_count {
        let home = if !cl_compute.is_empty()
            && (dc_compute.is_empty() || rng.gen_bool(params.home_on_cloudlet_probability))
        {
            cl_compute[rng.gen_range(0..cl_compute.len())]
        } else if !dc_compute.is_empty() {
            dc_compute[rng.gen_range(0..dc_compute.len())]
        } else {
            compute_ids[rng.gen_range(0..compute_ids.len())]
        };
        let f = draw_int(&mut rng, params.datasets_per_query).min(dataset_count);
        // Sample f distinct datasets (partial Fisher-Yates over the
        // shared pool; swaps recorded for the post-query undo).
        let mut demands = Vec::with_capacity(f);
        let mut largest: f64 = 0.0;
        swaps.clear();
        for slot in 0..f {
            let pick = rng.gen_range(slot..pool.len());
            pool.swap(slot, pick);
            swaps.push((slot, pick));
            let ds = DatasetId(pool[slot]);
            largest = largest.max(ib.dataset_size(ds));
            demands.push(Demand::new(ds, draw(&mut rng, params.selectivity)));
        }
        for &(slot, pick) in swaps.iter().rev() {
            pool.swap(slot, pick);
        }
        // The QoS deadline "depends on the size of dataset demanded by the
        // query" (§4.1). Demands are evaluated in parallel, so the largest
        // demanded dataset — the critical path — sets the size-dependent
        // part; the base term keeps small datasets broadly serviceable
        // while large ones genuinely need edge placement. A query
        // demanding more datasets is strictly harder to admit, which is
        // the Fig. 4 throughput behaviour the paper reports.
        let deadline =
            draw(&mut rng, params.deadline_base) + largest * draw(&mut rng, params.deadline_per_gb);
        ib.add_query(home, demands, draw(&mut rng, params.compute_rate), deadline);
    }

    ib.build().expect("generated instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_graph::connectivity::is_connected;

    fn small_params() -> WorkloadParams {
        WorkloadParams {
            data_centers: 2,
            cloudlets: 6,
            switches: 1,
            dataset_count: (4, 8),
            query_count: (5, 15),
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small_params();
        let a = generate_instance(&p, 42);
        let b = generate_instance(&p, 42);
        assert_eq!(a.datasets().len(), b.datasets().len());
        assert_eq!(a.queries().len(), b.queries().len());
        assert_eq!(a.queries(), b.queries());
        assert_eq!(
            a.cloud().graph().edge_count(),
            b.cloud().graph().edge_count()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let p = small_params();
        let a = generate_instance(&p, 1);
        let b = generate_instance(&p, 2);
        // Extremely unlikely to coincide in every drawn quantity.
        assert!(
            a.queries() != b.queries()
                || a.cloud().graph().edge_count() != b.cloud().graph().edge_count()
        );
    }

    #[test]
    fn topology_is_connected_and_typed() {
        let p = small_params();
        for seed in 0..20 {
            let inst = generate_instance(&p, seed);
            assert!(is_connected(inst.cloud().graph()), "seed {seed}");
            assert_eq!(inst.cloud().data_center_count(), 2);
            assert_eq!(inst.cloud().cloudlet_count(), 6);
            assert_eq!(inst.cloud().graph().node_count(), 9);
        }
    }

    #[test]
    fn attribute_ranges_respected() {
        let p = WorkloadParams::default();
        let inst = generate_instance(&p, 7);
        for v in inst.cloud().compute_ids() {
            let node = inst.cloud().node(v);
            match node.kind {
                NodeKind::DataCenter => {
                    assert!((200.0..700.0).contains(&node.capacity));
                }
                NodeKind::Cloudlet => {
                    assert!((8.0..16.0).contains(&node.capacity));
                }
                _ => panic!("non-compute kind in compute list"),
            }
        }
        for d in inst.datasets() {
            assert!((1.0..6.0).contains(&d.size_gb));
        }
        for q in inst.queries() {
            assert!((0.75..1.25).contains(&q.compute_rate));
            assert!(!q.demands.is_empty() && q.demands.len() <= 7);
            for dem in &q.demands {
                assert!((0.1..=1.0).contains(&dem.selectivity));
            }
        }
        let n_ds = inst.datasets().len();
        let n_q = inst.queries().len();
        assert!((5..=20).contains(&n_ds));
        assert!((10..=100).contains(&n_q));
    }

    #[test]
    fn deadlines_scale_with_largest_demanded_dataset() {
        let p = WorkloadParams::default();
        let inst = generate_instance(&p, 11);
        let (base_lo, base_hi) = p.deadline_base;
        let (lo, hi) = p.deadline_per_gb;
        for q in inst.queries() {
            let largest = q
                .demands
                .iter()
                .map(|d| inst.size(d.dataset))
                .fold(0.0, f64::max);
            let min = base_lo + largest * lo;
            let max = base_hi + largest * hi;
            assert!(
                q.deadline >= min - 1e-9 && q.deadline <= max + 1e-9,
                "deadline {} not within [{min}, {max}] for largest {largest}",
                q.deadline,
            );
        }
    }

    #[test]
    fn scale_preset_builds_hundred_thousand_queries_in_linear_memory() {
        // The ≥10^5-query preset behind `gen --scale` and ext-shard.
        // Pinning the ranges makes the counts exact: the only O(n)
        // allocations are the queries themselves plus one shared
        // dataset-sampling pool — the node count stays that of the
        // unscaled topology, which is the sanity pin that scaling the
        // workload did not silently scale (or quadratically re-allocate
        // per query, see the pool-undo comment in `generate_instance`)
        // anything keyed to |Q| × |S|.
        let params = WorkloadParams {
            query_count: (50, 50),
            dataset_count: (10, 10),
            datasets_per_query: (1, 3),
            ..WorkloadParams::default()
        }
        .with_scale(2000);
        assert_eq!(params.query_count, (100_000, 100_000));
        assert_eq!(params.dataset_count, (20_000, 20_000));
        let inst = generate_instance(&params, 1);
        assert_eq!(inst.queries().len(), 100_000);
        assert_eq!(inst.datasets().len(), 20_000);
        // Topology untouched by workload scale.
        assert_eq!(
            inst.cloud().graph().node_count(),
            WorkloadParams::default().network_size()
        );
        for q in inst.queries().iter().take(100) {
            assert!(!q.demands.is_empty() && q.demands.len() <= 3);
        }
    }

    #[test]
    fn pool_reuse_matches_the_per_query_allocation_stream() {
        // The shared sampling pool must be output-invisible: swaps are
        // undone after every query, so two generations (which both go
        // through the shared-pool path) and the documented invariant —
        // demands distinct, ids in range — hold at a scale where a
        // leaked permutation would certainly surface.
        let params = WorkloadParams {
            query_count: (400, 400),
            dataset_count: (30, 30),
            ..WorkloadParams::default()
        };
        let a = generate_instance(&params, 99);
        let b = generate_instance(&params, 99);
        assert_eq!(a.queries(), b.queries());
        for q in a.queries() {
            let mut seen = std::collections::HashSet::new();
            for dem in &q.demands {
                assert!(dem.dataset.index() < 30);
                assert!(seen.insert(dem.dataset));
            }
        }
    }

    #[test]
    fn with_scale_multiplies_workload_bounds_only() {
        let p = WorkloadParams::default().with_scale(10);
        assert_eq!(p.query_count, (100, 1000));
        assert_eq!(p.dataset_count, (50, 200));
        assert_eq!(p.network_size(), WorkloadParams::default().network_size());
        p.validate();
    }

    #[test]
    fn demands_are_distinct_per_query() {
        let inst = generate_instance(&WorkloadParams::default(), 13);
        for q in inst.queries() {
            let mut seen = std::collections::HashSet::new();
            for dem in &q.demands {
                assert!(seen.insert(dem.dataset), "duplicate demand in {}", q.id);
            }
        }
    }

    #[test]
    fn f_knob_caps_demand_count() {
        let p = WorkloadParams::default().with_max_datasets_per_query(2);
        let inst = generate_instance(&p, 17);
        assert!(inst.queries().iter().all(|q| q.demands.len() <= 2));
        let p1 = WorkloadParams::default().with_max_datasets_per_query(1);
        let inst = generate_instance(&p1, 17);
        assert!(inst.queries().iter().all(|q| q.demands.len() == 1));
    }

    #[test]
    fn transit_stub_topology_generates_connected_hierarchy() {
        let p = WorkloadParams {
            topology: TopologyModel::TransitStub,
            switches: 3,
            ..small_params()
        };
        for seed in 0..10 {
            let inst = generate_instance(&p, seed);
            let cloud = inst.cloud();
            assert!(is_connected(cloud.graph()), "seed {seed}");
            assert_eq!(cloud.data_center_count(), 2);
            assert_eq!(cloud.cloudlet_count(), 6);
            // Cloudlets never link directly to data centers in this model.
            for e in cloud.graph().edges() {
                let (ku, kv) = (cloud.kind(e.u), cloud.kind(e.v));
                assert!(
                    !(ku == NodeKind::Cloudlet && kv == NodeKind::DataCenter
                        || ku == NodeKind::DataCenter && kv == NodeKind::Cloudlet),
                    "seed {seed}: direct cloudlet-DC link in transit-stub"
                );
            }
        }
    }

    #[test]
    fn transit_stub_deterministic() {
        let p = WorkloadParams {
            topology: TopologyModel::TransitStub,
            ..small_params()
        };
        let a = generate_instance(&p, 4);
        let b = generate_instance(&p, 4);
        assert_eq!(a.cloud().graph(), b.cloud().graph());
    }

    #[test]
    fn base_stations_are_routing_only_leaves() {
        let p = WorkloadParams {
            base_stations: 10,
            ..small_params()
        };
        let inst = generate_instance(&p, 5);
        let cloud = inst.cloud();
        // BS nodes exist in the graph but not among compute nodes.
        assert_eq!(cloud.graph().node_count(), 2 + 6 + 1 + 10);
        assert_eq!(cloud.compute_count(), 8);
        assert!(is_connected(cloud.graph()));
        let bs_count = cloud
            .graph()
            .nodes()
            .filter(|&n| cloud.kind(n) == NodeKind::BaseStation)
            .count();
        assert_eq!(bs_count, 10);
        assert_eq!(p.network_size(), 19);
    }

    #[test]
    fn network_size_sweep_generates() {
        for n in [10, 32, 100, 200] {
            let p = WorkloadParams::default().with_network_size(n);
            let inst = generate_instance(&p, 3);
            assert_eq!(inst.cloud().graph().node_count(), n);
        }
    }
}
