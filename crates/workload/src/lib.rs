#![warn(missing_docs)]

//! Workload generation for the `edgerep` experiments.
//!
//! Reproduces the evaluation setup of §4.1 of the paper:
//!
//! * [`params::WorkloadParams`] — every knob of the simulation environment
//!   (node counts, link probability 0.2, capacity ranges `[200, 700]` /
//!   `[8, 16]` GHz, dataset volumes `[1, 6]` GB, compute rates
//!   `[0.75, 1.25]` GHz/GB, dataset counts `[5, 20]`, query counts
//!   `[10, 100]`, datasets-per-query `[1, 7]`, volume-scaled deadlines).
//! * [`generator`] — draws a two-tier edge cloud plus datasets and queries
//!   from a seeded RNG; every experiment value in the paper is a mean over
//!   15 such draws.
//! * [`presets`] — per-figure scenario builders (network-size sweeps,
//!   `F` sweeps, `K` sweeps).
//! * [`mobile_trace`] — the synthetic stand-in for the proprietary
//!   3-million-user mobile-app-usage dataset used by the paper's testbed
//!   (§4.3): Zipf-distributed app popularity, diurnal activity, and
//!   time-windowed partitioning into datasets.
//! * [`trace_history`] — the same trace re-cut as per-epoch,
//!   per-(home, dataset) demanded volume for the `edgerep-forecast`
//!   predictors.

pub mod generator;
pub mod mobile_trace;
pub mod params;
pub mod presets;
pub mod trace_history;

pub use generator::generate_instance;
pub use params::WorkloadParams;
