//! Synthetic mobile-app-usage trace.
//!
//! The paper's testbed analyzes "mobile application usage information from
//! 3 million anonymous mobile users for a period of three months" (§4.3) —
//! a proprietary dataset we cannot ship. This module generates a synthetic
//! trace with the same schema and the aggregate structure that matters to
//! the replication layer and the testbed's query engine:
//!
//! * **Zipf app popularity** — a few apps dominate usage, so "most popular
//!   apps" queries have skewed, stable answers;
//! * **diurnal activity** — session start times follow a day/night cycle,
//!   so "at what time is app X used" queries have structure;
//! * **per-user rates** — heavy and light users, Zipf-distributed;
//! * **time-window partitioning** — the paper "divide\[s\] the data into a
//!   number of datasets according to the data creation time"; so does
//!   [`partition_by_time`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One app-usage session record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Anonymous user id.
    pub user: u32,
    /// App id (0 is the most popular app).
    pub app: u32,
    /// Session start, seconds since the trace epoch.
    pub start: u64,
    /// Session duration in seconds.
    pub duration_s: u32,
    /// Bytes transferred during the session.
    pub bytes: u64,
}

/// Trace generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of distinct users.
    pub users: u32,
    /// Number of distinct apps.
    pub apps: u32,
    /// Trace length in days (the paper's dataset covers ~90).
    pub days: u32,
    /// Mean sessions per user per day.
    pub sessions_per_user_day: f64,
    /// Zipf exponent for app popularity (≈1 matches app-store data).
    pub app_zipf_exponent: f64,
    /// Zipf exponent for user activity.
    pub user_zipf_exponent: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            users: 3_000,
            apps: 200,
            days: 90,
            sessions_per_user_day: 0.5,
            app_zipf_exponent: 1.0,
            user_zipf_exponent: 0.8,
        }
    }
}

/// A discrete Zipf sampler over ranks `0..n` built from cumulative weights.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with the given exponent.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(exponent >= 0.0 && exponent.is_finite(), "bad exponent");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(exponent);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    /// Samples a rank in `0..n`; rank 0 is the most likely.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < u)
    }

    /// Probability mass of rank `r`.
    pub fn mass(&self, r: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if r == 0 { 0.0 } else { self.cumulative[r - 1] };
        (self.cumulative[r] - prev) / total
    }
}

/// Diurnal weight for a second-of-day: low 2am, peak 8pm, never zero.
fn diurnal_weight(second_of_day: u64) -> f64 {
    let hour = (second_of_day as f64) / 3600.0;
    // Cosine day cycle with trough at 02:00 and crest at 14:00 plus an
    // evening bump; normalized into (0.05, 1.0].
    let base = 0.5 + 0.5 * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos();
    let evening = (-((hour - 20.0) / 3.0).powi(2)).exp() * 0.5;
    (0.05 + base + evening) / 1.55
}

/// Generates the trace, sorted by start time.
pub fn generate_trace(cfg: &TraceConfig, seed: u64) -> Vec<Record> {
    assert!(cfg.users > 0 && cfg.apps > 0 && cfg.days > 0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let app_zipf = Zipf::new(cfg.apps as usize, cfg.app_zipf_exponent);
    let user_zipf = Zipf::new(cfg.users as usize, cfg.user_zipf_exponent);
    let total_sessions =
        (cfg.users as f64 * cfg.days as f64 * cfg.sessions_per_user_day).round() as usize;
    let horizon = cfg.days as u64 * 86_400;
    let mut records = Vec::with_capacity(total_sessions);
    while records.len() < total_sessions {
        // Rejection-sample a start time against the diurnal profile.
        let start = rng.gen_range(0..horizon);
        if rng.gen::<f64>() > diurnal_weight(start % 86_400) {
            continue;
        }
        let user = user_zipf.sample(&mut rng) as u32;
        let app = app_zipf.sample(&mut rng) as u32;
        // Log-normal-ish session lengths: most sessions are short.
        let duration_s = (30.0 * (-(rng.gen::<f64>()).ln())).ceil().min(7_200.0) as u32 + 5;
        let bytes = (duration_s as u64) * rng.gen_range(2_000..200_000);
        records.push(Record {
            user,
            app,
            start,
            duration_s,
            bytes,
        });
    }
    records.sort_by_key(|r| r.start);
    records
}

/// Splits a time-sorted trace into `windows` datasets by creation time
/// (equal-width windows over the trace horizon), as the paper does before
/// distributing datasets over the testbed.
pub fn partition_by_time(records: &[Record], windows: usize) -> Vec<Vec<Record>> {
    assert!(windows > 0, "need at least one window");
    let mut parts = vec![Vec::new(); windows];
    if records.is_empty() {
        return parts;
    }
    let start = records.first().expect("non-empty").start;
    let end = records.last().expect("non-empty").start;
    let span = (end - start).max(1);
    for &r in records {
        let idx = (((r.start - start) as u128 * windows as u128) / (span as u128 + 1)) as usize;
        parts[idx.min(windows - 1)].push(r);
    }
    parts
}

/// Total bytes of a record slice, the "volume" the testbed maps to GB.
pub fn volume_bytes(records: &[Record]) -> u64 {
    records.iter().map(|r| r.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TraceConfig {
        TraceConfig {
            users: 100,
            apps: 20,
            days: 7,
            sessions_per_user_day: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn trace_has_expected_size_and_order() {
        let cfg = small_cfg();
        let t = generate_trace(&cfg, 1);
        assert_eq!(t.len(), 700);
        assert!(t.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(t.iter().all(|r| r.user < 100 && r.app < 20));
        assert!(t.iter().all(|r| r.start < 7 * 86_400));
        assert!(t.iter().all(|r| r.duration_s >= 5 && r.bytes > 0));
    }

    #[test]
    fn trace_deterministic_per_seed() {
        let cfg = small_cfg();
        assert_eq!(generate_trace(&cfg, 9), generate_trace(&cfg, 9));
        assert_ne!(generate_trace(&cfg, 9), generate_trace(&cfg, 10));
    }

    #[test]
    fn app_popularity_is_skewed() {
        let cfg = TraceConfig {
            users: 500,
            apps: 50,
            days: 30,
            sessions_per_user_day: 1.0,
            ..Default::default()
        };
        let t = generate_trace(&cfg, 3);
        let mut counts = vec![0usize; 50];
        for r in &t {
            counts[r.app as usize] += 1;
        }
        // Rank-0 app must beat the median app by a wide margin.
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert!(counts[0] > 4 * sorted[25], "not Zipf-y: {counts:?}");
    }

    #[test]
    fn zipf_masses_decrease() {
        let z = Zipf::new(10, 1.0);
        for r in 1..10 {
            assert!(z.mass(r) <= z.mass(r - 1) + 1e-12);
        }
        let total: f64 = (0..10).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.mass(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sample_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn diurnal_never_zero_and_peaks_in_evening() {
        let night = diurnal_weight(2 * 3600);
        let evening = diurnal_weight(20 * 3600);
        assert!(night > 0.0);
        assert!(evening > 2.0 * night, "evening {evening} night {night}");
    }

    #[test]
    fn partition_covers_all_records() {
        let t = generate_trace(&small_cfg(), 4);
        let parts = partition_by_time(&t, 6);
        assert_eq!(parts.len(), 6);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), t.len());
        // Window boundaries respect time order.
        for w in parts.windows(2) {
            if let (Some(last), Some(first)) = (w[0].last(), w[1].first()) {
                assert!(last.start <= first.start);
            }
        }
    }

    #[test]
    fn partition_handles_empty_and_single_window() {
        assert_eq!(partition_by_time(&[], 3).len(), 3);
        let t = generate_trace(&small_cfg(), 2);
        let parts = partition_by_time(&t, 1);
        assert_eq!(parts[0].len(), t.len());
    }

    #[test]
    fn volume_sums_bytes() {
        let records = vec![
            Record {
                user: 0,
                app: 0,
                start: 0,
                duration_s: 10,
                bytes: 100,
            },
            Record {
                user: 1,
                app: 1,
                start: 5,
                duration_s: 10,
                bytes: 250,
            },
        ];
        assert_eq!(volume_bytes(&records), 350);
    }
}
