//! Workload parameters mirroring §4.1 of the paper.

use serde::{Deserialize, Serialize};

/// An inclusive-exclusive `f64` range usable with `Rng::gen_range`.
pub type Range = (f64, f64);

/// An inclusive integer range `[lo, hi]`.
pub type IntRange = (usize, usize);

/// Which random topology family the generator draws.
///
/// The paper's §4.1 uses GT-ITM's *flat* model (every node pair linked
/// with probability 0.2). GT-ITM's signature *transit-stub* hierarchy is
/// also provided so conclusions can be checked against a structured
/// topology (`repro ext-topology`): switches form a well-connected transit
/// core, cloudlets cluster into stub domains hanging off single transit
/// nodes, and data centers attach to the core via Internet links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TopologyModel {
    /// Flat Erdős–Rényi with the configured link probability (the paper).
    #[default]
    FlatRandom,
    /// Two-level transit-stub hierarchy.
    TransitStub,
}

/// Every knob of the simulated evaluation environment.
///
/// Defaults are the paper's §4.1 settings. Fields the paper leaves
/// unspecified (processing delays, link delays, selectivities, deadline
/// scale) are set to values that reproduce the *shapes* the paper reports
/// and are documented per field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Number of remote data centers (paper default: 6).
    pub data_centers: usize,
    /// Number of edge cloudlets (paper default: 24).
    pub cloudlets: usize,
    /// Number of routing-only switches (paper default: 2).
    pub switches: usize,
    /// Number of base stations through which users attach (Fig. 1 shows
    /// them; the paper's §4.1 simulation does not give a count, so the
    /// default is 0 — base stations are routing-only and do not change
    /// the placement problem, only path lengths).
    pub base_stations: usize,
    /// Probability of a link between each node pair (paper: 0.2).
    pub link_probability: f64,
    /// Topology family (see [`TopologyModel`]).
    pub topology: TopologyModel,
    /// Data center computing capacity range, GHz (paper: `[200, 700]`).
    pub dc_capacity: Range,
    /// Cloudlet computing capacity range, GHz (paper: `[8, 16]`).
    pub cloudlet_capacity: Range,
    /// Data center per-unit processing delay, s/GB per GHz. Not given in
    /// the paper; DCs process fastest.
    pub dc_proc_delay: Range,
    /// Cloudlet per-unit processing delay, s/GB per GHz.
    pub cloudlet_proc_delay: Range,
    /// WMAN link transmission delay, s/GB (edge-to-edge links).
    pub wman_link_delay: Range,
    /// Internet link transmission delay, s/GB (links touching a DC, which
    /// is reached "via the Internet to/from gateway nodes", §2.1).
    pub internet_link_delay: Range,
    /// Number of datasets `|S|` (paper: `[5, 20]`).
    pub dataset_count: IntRange,
    /// Dataset volume, GB (paper: `[1, 6]`).
    pub dataset_volume: Range,
    /// Number of queries `|Q|` (paper: `[10, 100]`).
    pub query_count: IntRange,
    /// Datasets demanded per query (paper: `[1, 7]`); the upper bound is
    /// the paper's `F` knob.
    pub datasets_per_query: IntRange,
    /// Compute rate `r_m`, GHz per GB (paper: `[0.75, 1.25]`).
    pub compute_rate: Range,
    /// Intermediate-result selectivity `α_nm` (Rao et al. framing; `(0,1]`).
    pub selectivity: Range,
    /// Base QoS deadline in seconds, drawn per query independently of its
    /// demand size.
    pub deadline_base: Range,
    /// Size-dependent deadline component, s/GB: the paper scales each
    /// query's QoS deadline with its demanded data ("the delay requirement
    /// of each query depends on the size of dataset demanded by the
    /// query", §4.1). The full deadline is
    /// `base + largest_demanded_size · per_gb`; the sublinear total keeps
    /// large datasets genuinely harder to serve remotely, which drives the
    /// volume gaps of Figs. 2–5.
    pub deadline_per_gb: Range,
    /// Probability a query's home is a cloudlet (users sit at the edge).
    pub home_on_cloudlet_probability: f64,
    /// Replica budget `K` per dataset.
    pub max_replicas: usize,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            data_centers: 6,
            cloudlets: 24,
            switches: 2,
            base_stations: 0,
            link_probability: 0.2,
            topology: TopologyModel::default(),
            dc_capacity: (200.0, 700.0),
            cloudlet_capacity: (8.0, 16.0),
            dc_proc_delay: (0.0005, 0.002),
            cloudlet_proc_delay: (0.004, 0.015),
            wman_link_delay: (0.01, 0.05),
            internet_link_delay: (0.3, 0.8),
            dataset_count: (5, 20),
            dataset_volume: (1.0, 6.0),
            query_count: (10, 100),
            datasets_per_query: (1, 7),
            compute_rate: (0.75, 1.25),
            selectivity: (0.1, 1.0),
            deadline_base: (0.05, 0.35),
            deadline_per_gb: (0.01, 0.05),
            home_on_cloudlet_probability: 0.8,
            max_replicas: 3,
        }
    }
}

impl WorkloadParams {
    /// Total nodes in the transport graph (`|BS ∪ SW ∪ CL ∪ DC|`; the
    /// generator has no separate base stations — users enter at cloudlets).
    pub fn network_size(&self) -> usize {
        self.data_centers + self.cloudlets + self.switches + self.base_stations
    }

    /// Rescales node counts to a total `network size` of `n`, preserving
    /// the paper's default 6 : 24 : 2 DC : cloudlet : switch ratio
    /// (Fig. 2 / Fig. 3 x-axis).
    pub fn with_network_size(mut self, n: usize) -> Self {
        assert!(
            n >= 3,
            "network size must fit one DC, one cloudlet, one switch"
        );
        let dc = ((n as f64) * 6.0 / 32.0).round().max(1.0) as usize;
        let sw = ((n as f64) * 2.0 / 32.0).round().max(1.0) as usize;
        let cl = n.saturating_sub(dc + sw).max(1);
        self.data_centers = dc;
        self.switches = sw;
        self.cloudlets = cl;
        self
    }

    /// Multiplies the workload volume — both `query_count` bounds and
    /// both `dataset_count` bounds — by `s`, leaving the topology alone
    /// (scale that separately via [`Self::with_network_size`]).
    ///
    /// This is the large-instance preset behind `edgerep gen --scale N`
    /// and the `ext-shard` scaled world: defaults at `--scale 1000`
    /// already draw 10^4–10^5 queries, and the generator builds them in
    /// O(queries) memory (no quadratic intermediate allocations; pinned
    /// by a unit test).
    pub fn with_scale(mut self, s: usize) -> Self {
        assert!(s >= 1, "scale must be at least 1");
        self.query_count = (
            self.query_count.0.saturating_mul(s),
            self.query_count.1.saturating_mul(s),
        );
        self.dataset_count = (
            self.dataset_count.0.saturating_mul(s),
            self.dataset_count.1.saturating_mul(s),
        );
        self
    }

    /// Sets the paper's `F` knob: max datasets demanded per query
    /// (Fig. 4 / Fig. 7 x-axis).
    pub fn with_max_datasets_per_query(mut self, f: usize) -> Self {
        assert!(f >= 1);
        self.datasets_per_query = (self.datasets_per_query.0.min(f), f);
        self
    }

    /// Sets the replica budget `K` (Fig. 5 / Fig. 8 x-axis).
    pub fn with_max_replicas(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.max_replicas = k;
        self
    }

    /// Panics with a diagnostic if any range is inverted or out of domain.
    pub fn validate(&self) {
        fn check(name: &str, (lo, hi): Range, positive: bool) {
            assert!(
                lo.is_finite() && hi.is_finite() && lo <= hi,
                "{name}: invalid range [{lo}, {hi}]"
            );
            if positive {
                assert!(lo > 0.0, "{name}: must be positive, got {lo}");
            } else {
                assert!(lo >= 0.0, "{name}: must be non-negative, got {lo}");
            }
        }
        assert!(self.data_centers + self.cloudlets > 0, "no compute nodes");
        assert!(
            (0.0..=1.0).contains(&self.link_probability),
            "link probability out of [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.home_on_cloudlet_probability),
            "home probability out of [0,1]"
        );
        check("dc_capacity", self.dc_capacity, true);
        check("cloudlet_capacity", self.cloudlet_capacity, true);
        check("dc_proc_delay", self.dc_proc_delay, false);
        check("cloudlet_proc_delay", self.cloudlet_proc_delay, false);
        check("wman_link_delay", self.wman_link_delay, false);
        check("internet_link_delay", self.internet_link_delay, false);
        check("dataset_volume", self.dataset_volume, true);
        check("compute_rate", self.compute_rate, true);
        check("deadline_base", self.deadline_base, true);
        check("deadline_per_gb", self.deadline_per_gb, true);
        check("selectivity", self.selectivity, true);
        assert!(self.selectivity.1 <= 1.0, "selectivity above 1");
        assert!(self.dataset_count.0 >= 1 && self.dataset_count.0 <= self.dataset_count.1);
        assert!(self.query_count.0 >= 1 && self.query_count.0 <= self.query_count.1);
        assert!(
            self.datasets_per_query.0 >= 1
                && self.datasets_per_query.0 <= self.datasets_per_query.1
        );
        assert!(self.max_replicas >= 1, "K must be >= 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = WorkloadParams::default();
        assert_eq!(p.data_centers, 6);
        assert_eq!(p.cloudlets, 24);
        assert_eq!(p.switches, 2);
        assert_eq!(p.link_probability, 0.2);
        assert_eq!(p.dc_capacity, (200.0, 700.0));
        assert_eq!(p.cloudlet_capacity, (8.0, 16.0));
        assert_eq!(p.dataset_volume, (1.0, 6.0));
        assert_eq!(p.compute_rate, (0.75, 1.25));
        assert_eq!(p.dataset_count, (5, 20));
        assert_eq!(p.query_count, (10, 100));
        assert_eq!(p.datasets_per_query, (1, 7));
        assert_eq!(p.network_size(), 32);
        p.validate();
    }

    #[test]
    fn network_size_rescales_with_ratio() {
        let p = WorkloadParams::default().with_network_size(64);
        assert_eq!(p.network_size(), 64);
        assert_eq!(p.data_centers, 12);
        assert_eq!(p.switches, 4);
        assert_eq!(p.cloudlets, 48);
        let p = WorkloadParams::default().with_network_size(200);
        assert_eq!(p.network_size(), 200);
        p.validate();
    }

    #[test]
    fn tiny_network_size_keeps_one_of_each() {
        let p = WorkloadParams::default().with_network_size(3);
        assert!(p.data_centers >= 1);
        assert!(p.cloudlets >= 1);
        assert!(p.switches >= 1);
        p.validate();
    }

    #[test]
    fn f_knob_clamps_lower_bound() {
        let p = WorkloadParams::default().with_max_datasets_per_query(1);
        assert_eq!(p.datasets_per_query, (1, 1));
        let p = WorkloadParams::default().with_max_datasets_per_query(4);
        assert_eq!(p.datasets_per_query, (1, 4));
        p.validate();
    }

    #[test]
    fn k_knob() {
        let p = WorkloadParams::default().with_max_replicas(7);
        assert_eq!(p.max_replicas, 7);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "K must be")]
    fn zero_k_rejected_by_validate() {
        let p = WorkloadParams {
            max_replicas: 0,
            ..Default::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_rejected() {
        let p = WorkloadParams {
            dataset_volume: (6.0, 1.0),
            ..Default::default()
        };
        p.validate();
    }

    #[test]
    fn serde_round_trip() {
        let p = WorkloadParams::default().with_network_size(100);
        let json = serde_json::to_string(&p).unwrap();
        let back: WorkloadParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
