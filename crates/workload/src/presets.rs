//! Per-figure scenario presets.
//!
//! Each preset returns the [`WorkloadParams`] used by the corresponding
//! figure of the paper; the x-axis value is a function parameter. Every
//! figure point is a mean over [`TOPOLOGIES_PER_POINT`] seeded draws.

use crate::params::WorkloadParams;

/// The paper averages each plotted value over 15 random topologies (§4.1).
pub const TOPOLOGIES_PER_POINT: usize = 15;

/// Network sizes swept by Fig. 2 and Fig. 3.
pub const NETWORK_SIZES: [usize; 5] = [32, 60, 100, 150, 200];

/// `F` values swept by Fig. 4 (max datasets demanded per query).
pub const F_VALUES: [usize; 6] = [1, 2, 3, 4, 5, 6];

/// `K` values swept by Fig. 5 (max replicas per dataset).
pub const K_VALUES: [usize; 7] = [1, 2, 3, 4, 5, 6, 7];

/// Fig. 2: special case (single-dataset queries), network-size sweep.
pub fn fig2_special_case(network_size: usize) -> WorkloadParams {
    WorkloadParams::default()
        .with_network_size(network_size)
        .with_max_datasets_per_query(1)
}

/// Fig. 3: general case (multi-dataset queries), network-size sweep.
pub fn fig3_general_case(network_size: usize) -> WorkloadParams {
    WorkloadParams::default().with_network_size(network_size)
}

/// Fig. 4: general case, `F` sweep at the default network size.
pub fn fig4_vary_f(f: usize) -> WorkloadParams {
    WorkloadParams::default().with_max_datasets_per_query(f)
}

/// Fig. 5: general case, `K` sweep at the default network size.
pub fn fig5_vary_k(k: usize) -> WorkloadParams {
    WorkloadParams::default().with_max_replicas(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_single_dataset_queries() {
        let p = fig2_special_case(100);
        assert_eq!(p.datasets_per_query, (1, 1));
        assert_eq!(p.network_size(), 100);
        p.validate();
    }

    #[test]
    fn fig3_keeps_default_f() {
        let p = fig3_general_case(60);
        assert_eq!(p.datasets_per_query, (1, 7));
        assert_eq!(p.network_size(), 60);
        p.validate();
    }

    #[test]
    fn fig4_sets_f() {
        for f in F_VALUES {
            let p = fig4_vary_f(f);
            assert_eq!(p.datasets_per_query.1, f);
            p.validate();
        }
    }

    #[test]
    fn fig5_sets_k() {
        for k in K_VALUES {
            let p = fig5_vary_k(k);
            assert_eq!(p.max_replicas, k);
            p.validate();
        }
    }
}
