//! Adapter from the synthetic mobile-app-usage trace to an
//! `edgerep-forecast` demand history.
//!
//! The paper's testbed partitions the usage trace into time-windowed
//! datasets; the forecasting layer instead needs the trace as *demand
//! over time*: who (which home cloudlet) pulled how much of which
//! dataset in each epoch. This module buckets trace sessions into
//! epochs and aggregates them into [`DemandHistory`] cells, giving the
//! forecasters a realistic diurnal/Zipf-shaped workload to train on
//! without inventing a second generator.

use edgerep_forecast::{DemandHistory, DemandKey, EpochDemand};

use crate::mobile_trace::{partition_by_time, Record};

const BYTES_PER_GB: f64 = 1e9;

/// How trace sessions map onto demand cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHistoryConfig {
    /// Number of equal-length epochs the trace is bucketed into.
    pub epochs: usize,
    /// Number of home cloudlets; users attach stably via `user % homes`.
    pub homes: u32,
    /// Number of datasets; apps map stably via `app % datasets`.
    pub datasets: u32,
}

impl Default for TraceHistoryConfig {
    /// 16 homes matches the Fig. 6 testbed's cloudlet count; 12 datasets
    /// matches its default window count; 24 epochs ≈ hourly over a day.
    fn default() -> Self {
        Self {
            epochs: 24,
            homes: 16,
            datasets: 12,
        }
    }
}

/// Aggregates one bucket of trace records into an epoch's demand.
pub fn epoch_from_records(records: &[Record], cfg: &TraceHistoryConfig) -> EpochDemand {
    let mut demand = EpochDemand::new();
    for r in records {
        demand.add(
            DemandKey::new(r.user % cfg.homes.max(1), r.app % cfg.datasets.max(1)),
            r.bytes as f64 / BYTES_PER_GB,
        );
    }
    demand
}

/// Buckets `records` into `cfg.epochs` equal time windows and records
/// each as one epoch of a [`DemandHistory`] (capacity = epoch count, so
/// nothing is evicted). Sessions keep their trace order semantics: the
/// same bucketing as `mobile_trace::partition_by_time`.
pub fn trace_demand_history(records: &[Record], cfg: &TraceHistoryConfig) -> DemandHistory {
    assert!(cfg.epochs >= 1, "need at least one epoch");
    assert!(
        cfg.homes >= 1 && cfg.datasets >= 1,
        "need homes and datasets"
    );
    let mut history = DemandHistory::new(cfg.epochs);
    for bucket in partition_by_time(records, cfg.epochs) {
        history.record(epoch_from_records(&bucket, cfg));
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobile_trace::{generate_trace, volume_bytes, TraceConfig};

    fn small_trace() -> Vec<Record> {
        generate_trace(
            &TraceConfig {
                users: 200,
                apps: 24,
                days: 3,
                ..Default::default()
            },
            42,
        )
    }

    #[test]
    fn history_covers_every_epoch_and_conserves_volume() {
        let records = small_trace();
        let cfg = TraceHistoryConfig {
            epochs: 12,
            homes: 8,
            datasets: 6,
        };
        let history = trace_demand_history(&records, &cfg);
        assert_eq!(history.len(), 12);
        assert_eq!(history.recorded(), 12);
        let total: f64 = (0..history.len())
            .map(|i| history.epoch(i).total_volume())
            .sum();
        let expected = volume_bytes(&records) as f64 / 1e9;
        assert!(
            (total - expected).abs() < 1e-6 * expected.max(1.0),
            "{total} vs {expected}"
        );
    }

    #[test]
    fn keys_stay_within_configured_universe() {
        let records = small_trace();
        let cfg = TraceHistoryConfig {
            epochs: 6,
            homes: 4,
            datasets: 3,
        };
        let history = trace_demand_history(&records, &cfg);
        for key in history.keys() {
            assert!(
                key.home < cfg.homes && key.dataset < cfg.datasets,
                "{key:?}"
            );
        }
        // Zipf app popularity concentrates demand: dataset 0 (apps 0, 3,
        // 6, …, including the most popular app) dominates any other.
        let by_dataset = |d: u32| -> f64 {
            history
                .keys()
                .into_iter()
                .filter(|k| k.dataset == d)
                .map(|k| history.cumulative_volume(k))
                .sum()
        };
        assert!(by_dataset(0) > by_dataset(1));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = TraceHistoryConfig::default();
        let a = trace_demand_history(&small_trace(), &cfg);
        let b = trace_demand_history(&small_trace(), &cfg);
        assert_eq!(a.keys(), b.keys());
        for key in a.keys() {
            assert_eq!(a.series(key), b.series(key));
        }
    }

    #[test]
    fn forecasters_consume_trace_history() {
        use edgerep_forecast::{Forecaster, SeasonalNaive};
        let history = trace_demand_history(&small_trace(), &TraceHistoryConfig::default());
        let forecast = SeasonalNaive::new(4).predict(&history);
        assert!(forecast.total_volume() > 0.0);
    }
}
