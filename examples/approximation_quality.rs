//! Approximation quality: on small instances where the exact ILP optimum
//! is computable, sandwich `Appro-G` between the optimum and the LP / dual
//! upper bounds and report the empirical approximation ratio against the
//! theorem's `max(|Q|·|S|, |V|·|S|/K)` guarantee.
//!
//! ```text
//! cargo run --release -p edgerep-exp --example approximation_quality
//! ```

use edgerep_core::appro::Appro;
use edgerep_core::ilp::lp_upper_bound;
use edgerep_core::optimal::{Optimal, OptimalStatus};
use edgerep_workload::{generate_instance, WorkloadParams};

fn main() {
    let params = WorkloadParams {
        data_centers: 2,
        cloudlets: 4,
        switches: 1,
        dataset_count: (3, 5),
        query_count: (6, 10),
        datasets_per_query: (1, 2),
        ..Default::default()
    };
    println!(
        "{:>5} | {:>10} | {:>10} | {:>10} | {:>10} | {:>9} | {:>9}",
        "seed", "Appro [GB]", "OPT [GB]", "LP bound", "dual bnd", "OPT/Appro", "theorem"
    );
    println!("{}", "-".repeat(84));
    let mut worst: f64 = 1.0;
    for seed in 0..10u64 {
        let inst = generate_instance(&params, seed);
        let report = Appro::default().run(&inst);
        let appro = report.solution.admitted_volume(&inst);
        let (opt_sol, status) = Optimal::default().solve_with_status(&inst);
        let opt = opt_sol.admitted_volume(&inst);
        let lp = lp_upper_bound(&inst);
        let q = inst.queries().len() as f64;
        let s = inst.datasets().len() as f64;
        let v = inst.cloud().compute_count() as f64;
        let k = inst.max_replicas() as f64;
        let theorem = (q * s).max(v * s / k);
        let ratio = if appro > 0.0 {
            opt / appro
        } else {
            f64::INFINITY
        };
        worst = worst.max(ratio);
        println!(
            "{:>5} | {:>10.2} | {:>8.2}{} | {:>10.2} | {:>10.2} | {:>9.3} | {:>9.1}",
            seed,
            appro,
            opt,
            match status {
                OptimalStatus::Proven => " ",
                OptimalStatus::Incumbent => "*",
                OptimalStatus::Unknown => "?",
            },
            lp,
            report.dual_bound,
            ratio,
            theorem,
        );
        assert!(appro <= opt + 1e-6, "heuristic beat the proven optimum?!");
        assert!(opt <= lp + 1e-6, "optimum above the LP relaxation?!");
    }
    println!(
        "\nworst empirical OPT/Appro ratio: {worst:.3} (theorem guarantees only max(|Q||S|, |V||S|/K))"
    );
    println!("(* = node budget hit, incumbent shown; ? = no incumbent found)");
}
