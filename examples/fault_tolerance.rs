//! Fault tolerance: kill the busiest cloudlet VM in the testbed and watch
//! replication (`K > 1`) absorb the failure through replica failover.
//!
//! ```text
//! cargo run --release -p edgerep-exp --example fault_tolerance
//! ```

use edgerep_core::appro::ApproG;
use edgerep_model::ComputeNodeId;
use edgerep_testbed::{
    build_testbed_instance, run_testbed, run_testbed_with_faults, NodeFailure, SimConfig,
    TestbedConfig,
};

fn main() {
    println!(
        "{:>3} | {:>22} | {:>26} | {:>9} | {:>10}",
        "K", "fault-free volume [GB]", "busiest-VM-down volume [GB]", "failovers", "lost"
    );
    println!("{}", "-".repeat(86));
    for k in [1usize, 2, 3, 4, 5] {
        let cfg = TestbedConfig::default().with_max_replicas(k);
        let (mut clean_v, mut faulty_v) = (0.0, 0.0);
        let (mut failovers, mut lost) = (0usize, 0usize);
        let seeds = 6u64;
        for seed in 0..seeds {
            let world = build_testbed_instance(&cfg, seed);
            let sim = SimConfig {
                seed,
                ..Default::default()
            };
            let clean = run_testbed(&ApproG::default(), &world, &sim);
            // The adversarial failure: whichever cloudlet the plan loads
            // most heavily goes down before the first query arrives.
            let loads = clean.plan.node_loads(&world.instance);
            let busiest = loads
                .iter()
                .enumerate()
                .skip(4) // skip the DC VMs
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| ComputeNodeId(i as u32))
                .expect("cloudlets exist");
            let faulty = run_testbed_with_faults(
                &ApproG::default(),
                &world,
                &sim,
                &[NodeFailure {
                    node: busiest,
                    at_s: 0.0,
                }],
            );
            clean_v += clean.measured_volume;
            faulty_v += faulty.measured_volume;
            failovers += faulty.failovers;
            lost += faulty.queries_lost_to_faults;
        }
        let n = seeds as f64;
        println!(
            "{:>3} | {:>22.1} | {:>26.1} | {:>9} | {:>10}",
            k,
            clean_v / n,
            faulty_v / n,
            failovers,
            lost
        );
    }
    println!(
        "\nReading: at K = 1 the failed VM's datasets are simply gone; with more\n\
         replicas, arriving queries fail over to surviving copies and the gap closes."
    );
}
