//! Placement study: run the full algorithm panel of the paper — `Appro-G`,
//! `Greedy-G`, `Graph-G`, `Popularity-G` — on the paper's default workload
//! (6 DCs, 24 cloudlets, 2 switches, §4.1 parameters) and print a
//! side-by-side comparison over several random topologies.
//!
//! ```text
//! cargo run --release -p edgerep-exp --example placement_study [seeds]
//! ```

use edgerep_core::{
    appro::ApproG, graphpart::GraphPartition, greedy::Greedy, popularity::Popularity,
    BoxedAlgorithm,
};
use edgerep_exp::stats::Summary;
use edgerep_model::Metrics;
use edgerep_workload::{generate_instance, WorkloadParams};

fn main() {
    let seeds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let params = WorkloadParams::default();
    let panel: Vec<BoxedAlgorithm> = vec![
        Box::new(ApproG::default()),
        Box::new(Greedy::general()),
        Box::new(GraphPartition::general()),
        Box::new(Popularity::general()),
    ];

    println!(
        "paper-default workload: {} DCs, {} cloudlets, {} switches, K = {}, {} topologies\n",
        params.data_centers, params.cloudlets, params.switches, params.max_replicas, seeds
    );

    let mut volumes: Vec<Vec<f64>> = vec![Vec::new(); panel.len()];
    let mut throughputs: Vec<Vec<f64>> = vec![Vec::new(); panel.len()];
    let mut replicas: Vec<Vec<f64>> = vec![Vec::new(); panel.len()];
    let mut delays: Vec<Vec<f64>> = vec![Vec::new(); panel.len()];
    for seed in 0..seeds as u64 {
        let inst = generate_instance(&params, seed);
        for (i, alg) in panel.iter().enumerate() {
            let sol = alg.solve(&inst);
            sol.validate(&inst).expect("feasible");
            let m = Metrics::of(&inst, &sol);
            volumes[i].push(m.admitted_volume);
            throughputs[i].push(m.throughput);
            replicas[i].push(m.replicas_placed as f64);
            delays[i].push(m.mean_admitted_delay);
        }
    }

    println!(
        "{:>14} | {:>18} | {:>15} | {:>10} | {:>12}",
        "algorithm", "volume [GB]", "throughput", "replicas", "mean delay"
    );
    println!("{}", "-".repeat(84));
    let appro_vol = Summary::of(&volumes[0]).mean;
    for (i, alg) in panel.iter().enumerate() {
        let v = Summary::of(&volumes[i]);
        let t = Summary::of(&throughputs[i]);
        let r = Summary::of(&replicas[i]);
        let d = Summary::of(&delays[i]);
        println!(
            "{:>14} | {:>18} | {:>9.3} ± {:.3} | {:>10.1} | {:>10.3}s",
            alg.name(),
            v.display_ci(),
            t.mean,
            t.ci95,
            r.mean,
            d.mean,
        );
        if i > 0 && v.mean > 0.0 {
            println!(
                "{:>14} |   (Appro-G admits {:.1}x this volume)",
                "",
                appro_vol / v.mean
            );
        }
    }
}
