//! Quickstart: build a small two-tier edge cloud by hand, describe datasets
//! and QoS-bound analytics queries, and let `Appro-G` decide where replicas
//! go and which queries are admitted.
//!
//! ```text
//! cargo run --release -p edgerep-exp --example quickstart
//! ```

use edgerep_core::appro::{Appro, ApproG};
use edgerep_core::PlacementAlgorithm;
use edgerep_model::prelude::*;

fn main() {
    // --- 1. The edge cloud: one remote DC, three metro cloudlets. -------
    let mut b = EdgeCloudBuilder::new();
    let dc = b.add_data_center(400.0, 0.001); // 400 GHz, 1 ms/GB
    let cl_a = b.add_cloudlet(12.0, 0.008);
    let cl_b = b.add_cloudlet(10.0, 0.010);
    let cl_c = b.add_cloudlet(8.0, 0.012);
    let sw = b.add_switch();
    // Metro fabric: cloudlets hang off one switch (20-40 ms/GB links).
    b.link_graph(b.graph_node(cl_a), sw, 0.02);
    b.link_graph(b.graph_node(cl_b), sw, 0.03);
    b.link_graph(b.graph_node(cl_c), sw, 0.04);
    // The DC sits behind the Internet (400 ms/GB).
    b.link_graph(b.graph_node(dc), sw, 0.4);
    let cloud = b.build().expect("a valid cloud");

    // --- 2. Datasets and queries, with a replica budget of K = 2. -------
    let mut ib = InstanceBuilder::new(cloud, 2);
    let logs = ib.add_dataset(5.0, dc); // 5 GB of service logs, born at the DC
    let clicks = ib.add_dataset(2.0, dc); // 2 GB click stream
                                          // A dashboard at cloudlet A: needs half the logs joined fast.
    ib.add_query(cl_a, vec![Demand::new(logs, 0.5)], 1.0, 0.30);
    // A report at cloudlet B: logs + clicks, a little more patient.
    ib.add_query(
        cl_b,
        vec![Demand::new(logs, 0.3), Demand::new(clicks, 1.0)],
        1.0,
        0.50,
    );
    // A deep scan at cloudlet C with an impossible 50 ms budget.
    ib.add_query(cl_c, vec![Demand::new(logs, 1.0)], 1.2, 0.05);
    let instance = ib.build().expect("a valid instance");

    // --- 3. Solve and inspect. -------------------------------------------
    let report = Appro::default().run(&instance);
    let solution = report.solution;
    solution
        .validate(&instance)
        .expect("Appro always returns feasible solutions");

    println!("algorithm: {}", ApproG::default().name());
    println!("dual bound: {:.2} GB\n", report.dual_bound);
    for d in instance.dataset_ids() {
        let at: Vec<String> = solution
            .replicas_of(d)
            .iter()
            .map(|v| v.to_string())
            .collect();
        println!(
            "dataset {d} ({} GB) replicated at [{}]",
            instance.size(d),
            at.join(", ")
        );
    }
    println!();
    for q in instance.query_ids() {
        match solution.assignment_of(q) {
            Some(nodes) => {
                let delay = edgerep_model::delay::query_delay(&instance, q, nodes);
                println!(
                    "query {q}: ADMITTED at {:?} — delay {:.3}s within deadline {:.3}s",
                    nodes.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                    delay,
                    instance.query(q).deadline
                );
            }
            None => println!(
                "query {q}: rejected (deadline {:.3}s unreachable)",
                instance.query(q).deadline
            ),
        }
    }
    println!("\n{}", Metrics::of(&instance, &solution));
}
