//! Testbed analytics: spin up the Fig. 6 geo-distributed testbed, replicate
//! time-partitioned mobile-app-usage datasets with `Appro-G`, stream
//! queries through the discrete-event simulator, and print both the
//! measured QoS outcome and a real analytics answer — with the §2.4
//! consistency mechanism turned on.
//!
//! ```text
//! cargo run --release -p edgerep-exp --example testbed_analytics
//! ```

use edgerep_core::appro::ApproG;
use edgerep_core::popularity::Popularity;
use edgerep_testbed::analytics::AnalyticsResult;
use edgerep_testbed::{
    build_testbed_instance, run_testbed, ConsistencyConfig, SimConfig, TestbedConfig,
};

fn main() {
    let cfg = TestbedConfig::default();
    let world = build_testbed_instance(&cfg, 2024);
    println!(
        "testbed: {} DC VMs + {} cloudlet VMs, {} datasets from a {}-day trace of {} users\n",
        world.instance.cloud().data_center_count(),
        world.instance.cloud().cloudlet_count(),
        world.instance.datasets().len(),
        cfg.trace.days,
        cfg.trace.users,
    );

    // Aggressive data growth so the §2.4 consistency mechanism visibly
    // fires within the short query horizon of this example.
    let sim = SimConfig {
        consistency: Some(ConsistencyConfig {
            growth_gb_per_hour: 20.0,
            threshold: 0.05,
            check_interval_s: 15.0,
        }),
        ..Default::default()
    };

    for report in [
        run_testbed(&ApproG::default(), &world, &sim),
        run_testbed(&Popularity::general(), &world, &sim),
    ] {
        println!("=== {} ===", report.algorithm);
        println!(
            "planned: {:>6.1} GB over {:>2} queries | measured: {:>6.1} GB over {:>2} of {} (throughput {:.1}%)",
            report.planned_volume,
            report.planned_admitted,
            report.measured_volume,
            report.measured_admitted,
            report.total_queries,
            report.measured_throughput * 100.0
        );
        println!(
            "response: mean {:.2}s, worst {:.2}s | replication {:.1} GB (slowest transfer {:.1}s) | consistency {:.2} GB in {} rounds",
            report.mean_response_s,
            report.max_response_s,
            report.replication_gb,
            report.replication_time_s,
            report.consistency_gb,
            report.consistency_rounds
        );
        // Show one real analytics answer.
        if let Some((q, answer)) = report.answers.first() {
            match answer {
                AnalyticsResult::TopApps(pairs) => {
                    let top: Vec<String> = pairs
                        .iter()
                        .take(3)
                        .map(|(app, dur)| format!("app{app} ({dur}s)"))
                        .collect();
                    println!("sample answer for {q}: top apps = [{}]", top.join(", "));
                }
                AnalyticsResult::UsageByHour(hist) => {
                    let peak = hist
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &v)| v)
                        .map(|(h, _)| h)
                        .unwrap_or(0);
                    println!("sample answer for {q}: peak usage hour = {peak}:00");
                }
                AnalyticsResult::UserPattern {
                    sessions,
                    total_duration_s,
                    distinct_apps,
                } => println!(
                    "sample answer for {q}: {sessions} sessions, {total_duration_s}s over {distinct_apps} apps"
                ),
            }
        }
        println!();
    }
}
