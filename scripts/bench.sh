#!/usr/bin/env bash
# Measured benchmark trajectory: run the zero-dependency suite and append
# a new BENCH_<n>.json snapshot at the repo root, then gate against the
# previous snapshot.
#
#   scripts/bench.sh             # full measurement -> BENCH_<n>.json + diff gate
#   scripts/bench.sh --smoke     # 1 warmup + 1 iteration (shape check only)
#   scripts/bench.sh --threshold 15   # custom regression threshold (percent)
#
# The diff gate exits nonzero when any entry's median regresses beyond the
# threshold (default 10%) AND the move clears the noise floor (3x MAD).
# Delete the newest BENCH file to retract a bad measurement. Run on a
# quiet machine; smoke runs are for wiring checks, not for committing.
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=()
threshold=()
while [ "$#" -gt 0 ]; do
    case "$1" in
        --smoke) smoke=(--smoke); shift ;;
        --threshold)
            [ "$#" -ge 2 ] || { echo "--threshold needs a value" >&2; exit 2; }
            threshold=(--threshold "$2"); shift 2 ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
done

echo "== build (release) =="
cargo build -q --release -p edgerep-bench --bin bench
bench=target/release/bench

# Next index in the BENCH_<n>.json trajectory, and the previous snapshot.
# The trajectory starts at 6 — the PR that introduced the harness — so
# file numbers line up with the PR sequence in CHANGES.md.
prev=""
next=6
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    case "$n" in *[!0-9]*) continue ;; esac
    if [ "$n" -ge "$next" ]; then
        next=$((n + 1))
        prev="$f"
    fi
done
out="BENCH_${next}.json"

echo "== measure -> $out =="
"$bench" run "${smoke[@]}" --out "$out"

if [ -n "$prev" ]; then
    echo "== regression gate: $prev -> $out =="
    "$bench" diff "${threshold[@]}" "$prev" "$out"
else
    echo "(empty BENCH trajectory — no baseline, gate skipped; $out is the new baseline)"
fi
