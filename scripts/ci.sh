#!/usr/bin/env bash
# Local CI: the exact gates a PR must pass, in the order they fail fastest.
#
#   scripts/ci.sh            # fmt + clippy + tier-1 build & tests
#   scripts/ci.sh --no-fmt   # skip the formatting gate (e.g. older rustfmt)
#
# Tier-1 (ROADMAP.md): cargo build --release && cargo test -q
set -euo pipefail
cd "$(dirname "$0")/.."

run_fmt=1
for arg in "$@"; do
    case "$arg" in
        --no-fmt) run_fmt=0 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

if [ "$run_fmt" -eq 1 ]; then
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
fi

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

# The flattened seed × algorithm scheduler must be output-invisible: run
# the cross-crate determinism suite by name so a filtered `cargo test`
# invocation can never silently skip it.
echo "== determinism: flattened schedule == sequential baseline =="
cargo test -q -p edgerep-exp --test integration_determinism

# The solver hot path (cached candidate matrix, batched dual prices) and
# the rolling incremental-replan fast path must stay byte-identical to
# their naive reference paths: run the equivalence pins by name so a
# filtered run can never silently skip them.
echo "== equivalence: cached hot path == naive reference =="
cargo test -q -p edgerep-core --lib appro::tests::cached_scan
cargo test -q -p edgerep-core --test proptests solvers_tolerate_disconnected_topologies
cargo test -q -p edgerep-testbed --lib rolling::tests::replan_skips_on_empty_diff_and_reuses_layout_verbatim
cargo test -q -p edgerep-testbed --lib rolling::tests::cached_world_stamps_identical_instances
cargo test -q -p edgerep-shard --lib solver::tests::r1_is_byte_identical_for_every_query_order

# Smoke the traced figure regeneration: every line must be JSON and the
# file must end in the registry-dump completion marker.
echo "== repro --trace smoke =="
trace_tmp="$(mktemp -d)"
trap 'rm -rf "$trace_tmp"' EXIT
cargo run -q -p edgerep-exp --release --bin repro -- fig2 --seeds 1 \
    --trace "$trace_tmp/fig2.ndjson" > /dev/null
if command -v python3 > /dev/null; then
    python3 -c 'import json,sys
[json.loads(l) for l in open(sys.argv[1])]' "$trace_tmp/fig2.ndjson"
fi
tail -n 1 "$trace_tmp/fig2.ndjson" | grep -q '"event":"dump.done"' \
    || { echo "repro --trace did not end in a dump.done line" >&2; exit 1; }

# Smoke the predictive-replication extension: the trace must close with
# the registry dump and contain at least one forecast.predict span from
# the per-epoch prediction step.
echo "== repro ext-forecast --trace smoke =="
cargo run -q -p edgerep-exp --release --bin repro -- ext-forecast --seeds 2 \
    --trace "$trace_tmp/ext-forecast.ndjson" > /dev/null
tail -n 1 "$trace_tmp/ext-forecast.ndjson" | grep -q '"event":"dump.done"' \
    || { echo "ext-forecast trace did not end in a dump.done line" >&2; exit 1; }
grep -q '"span":"forecast.predict"' "$trace_tmp/ext-forecast.ndjson" \
    || { echo "ext-forecast trace has no forecast.predict span event" >&2; exit 1; }

# Smoke the chunked transfer engine under the correlated-storm preset:
# the traced run must show both interruption outcomes — at least one
# transfer resumed with its verified chunks intact and at least one
# abandoned after retry exhaustion.
echo "== repro ext-availability --storm --trace smoke =="
cargo run -q -p edgerep-exp --release --bin repro -- ext-availability --storm --quick \
    --trace "$trace_tmp/storm.ndjson" > /dev/null
grep -q '"event":"transfer.resume"' "$trace_tmp/storm.ndjson" \
    || { echo "storm trace has no transfer.resume event" >&2; exit 1; }
grep -q '"event":"transfer.abandoned"' "$trace_tmp/storm.ndjson" \
    || { echo "storm trace has no transfer.abandoned event" >&2; exit 1; }

# Smoke the erasure-coding extension: the traced run must show shard-set
# physics actually exercised — degraded reads served below full shard
# strength and the Background-tier scrubber detecting/rebuilding shards.
echo "== repro ext-ec --quick --trace smoke =="
cargo run -q -p edgerep-exp --release --bin repro -- ext-ec --quick \
    --trace "$trace_tmp/ec.ndjson" > /dev/null
grep -q '"event":"ec.degraded_read"' "$trace_tmp/ec.ndjson" \
    || { echo "ext-ec trace has no ec.degraded_read event" >&2; exit 1; }
grep -q '"event":"ec.scrub"' "$trace_tmp/ec.ndjson" \
    || { echo "ext-ec trace has no ec.scrub event" >&2; exit 1; }

# Smoke the sharded regional solver: the traced run must show the shard
# fan-out (shard.solve) and the boundary reconciliation pass actually
# running (shard.reconcile) for the R > 1 cells.
echo "== repro ext-shard --quick --trace smoke =="
cargo run -q -p edgerep-exp --release --bin repro -- ext-shard --quick \
    --trace "$trace_tmp/shard.ndjson" > /dev/null
grep -q '"span":"shard.solve"' "$trace_tmp/shard.ndjson" \
    || { echo "ext-shard trace has no shard.solve span event" >&2; exit 1; }
grep -q '"span":"shard.reconcile"' "$trace_tmp/shard.ndjson" \
    || { echo "ext-shard trace has no shard.reconcile span event" >&2; exit 1; }

# Smoke the span-tree profiler end to end: folded stacks are written and
# the traced stream carries the profile.dump completion event.
echo "== repro --profile smoke =="
cargo run -q -p edgerep-exp --release --bin repro -- fig2 --seeds 1 \
    --profile "$trace_tmp/fig2.folded" --trace "$trace_tmp/fig2prof.ndjson" > /dev/null
test -s "$trace_tmp/fig2.folded" \
    || { echo "repro --profile wrote no folded stacks" >&2; exit 1; }
grep -q '"event":"profile.dump"' "$trace_tmp/fig2prof.ndjson" \
    || { echo "traced profile run has no profile.dump event" >&2; exit 1; }

# Bench harness smoke: 1 warmup + 1 iteration per entry, schema-validated
# JSON, and the regression gate runs clean against itself (report-only).
# The full measured run + BENCH_<n>.json trajectory is scripts/bench.sh.
echo "== bench smoke =="
cargo run -q -p edgerep-bench --release --bin bench -- run --smoke \
    --out "$trace_tmp/BENCH_smoke.json"
if command -v python3 > /dev/null; then
    python3 - "$trace_tmp/BENCH_smoke.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "edgerep-bench/v1", doc["schema"]
assert isinstance(doc["created_unix_s"], int)
assert len(doc["entries"]) >= 7, len(doc["entries"])
for e in doc["entries"]:
    for key in ("name", "kind", "iters_per_sample", "samples",
                "median_ns", "mad_ns", "mean_ns", "min_ns", "max_ns"):
        assert key in e, (e, key)
EOF
fi
# The two hot-path microbenches must stay in the suite under their stable
# names — the BENCH_<n>.json trajectory keys on them.
for name in appro.candidate_scan rolling.incremental_replan shard.partition_solve; do
    grep -q "\"name\": \"$name\"" "$trace_tmp/BENCH_smoke.json" \
        || { echo "bench smoke output is missing $name" >&2; exit 1; }
done
cargo run -q -p edgerep-bench --release --bin bench -- diff --report-only \
    "$trace_tmp/BENCH_smoke.json" "$trace_tmp/BENCH_smoke.json" > /dev/null

# Opt-in perf gate (ROADMAP): the obs_overhead bench's `disabled` path
# must stay within noise of the recorded `ci` criterion baseline. Needs a
# quiet machine (and cargo-registry access for criterion), hence env-var
# guarded. Protocol + how to read the report:
# results/obs_overhead_baseline.md.
if [ "${EDGEREP_BENCH_GATE:-0}" = "1" ]; then
    echo "== opt-in: obs_overhead bench vs 'ci' baseline =="
    if compgen -G "target/criterion/*/*/ci" > /dev/null; then
        cargo bench -p edgerep-bench --features criterion-benches \
            --bench obs_overhead -- --baseline ci
    else
        echo "(no 'ci' baseline yet: recording one)"
        cargo bench -p edgerep-bench --features criterion-benches \
            --bench obs_overhead -- --save-baseline ci
    fi
fi

echo "ci: all gates passed"
