#!/usr/bin/env bash
# Local CI: the exact gates a PR must pass, in the order they fail fastest.
#
#   scripts/ci.sh            # fmt + clippy + tier-1 build & tests
#   scripts/ci.sh --no-fmt   # skip the formatting gate (e.g. older rustfmt)
#
# Tier-1 (ROADMAP.md): cargo build --release && cargo test -q
set -euo pipefail
cd "$(dirname "$0")/.."

run_fmt=1
for arg in "$@"; do
    case "$arg" in
        --no-fmt) run_fmt=0 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

if [ "$run_fmt" -eq 1 ]; then
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
fi

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

# Opt-in perf gate (ROADMAP): the obs_overhead bench's `disabled` path
# must stay within noise of the recorded `ci` criterion baseline. Needs a
# quiet machine, hence env-var guarded. Protocol + how to read the
# report: results/obs_overhead_baseline.md.
if [ "${EDGEREP_BENCH_GATE:-0}" = "1" ]; then
    echo "== opt-in: obs_overhead bench vs 'ci' baseline =="
    if compgen -G "target/criterion/*/*/ci" > /dev/null; then
        cargo bench -p edgerep-bench --bench obs_overhead -- --baseline ci
    else
        echo "(no 'ci' baseline yet: recording one)"
        cargo bench -p edgerep-bench --bench obs_overhead -- --save-baseline ci
    fi
fi

echo "ci: all gates passed"
