#!/bin/bash
# Standalone full-crate verification harness (v3).
#
# Compiles every workspace crate and its unit-test binary with plain
# `rustc` — no cargo, no registry access — for machines without a crates.io
# mirror. Real dependencies are replaced:
#
#   * serde derives are stripped textually (`strip_serde`);
#   * `rand` is a committed xorshift stub (stubs/rand.rs) — deterministic
#     but NOT bit-compatible with the real crate, so tests asserting exact
#     generator streams must gate themselves on EDGEREP_STUB_HARNESS;
#   * `serde_json` is a committed `unimplemented!()` stub
#     (stubs/serde_json.rs) — serde round-trip tests gate likewise.
#
# Usage:
#   REPO=/path/to/repo WORK=/tmp/edgerep-standalone scripts/standalone/build.sh
#   scripts/standalone/run.sh        # builds, then runs every *_tests binary
#
# The run script exports EDGEREP_STUB_HARNESS=1, which the gated tests
# check via std::env::var_os to early-return under the stubs. A real
# `cargo test` run never sets it, so the full suite still covers them.
set -e
STUBS="$(cd "$(dirname "$0")/stubs" && pwd)"
R=${REPO:-$(cd "$(dirname "$0")/../.." && pwd)}/crates
WORK=${WORK:-/tmp/edgerep-standalone}
mkdir -p "$WORK"
cd "$WORK"

strip_serde() { # $1 src dir, $2 dst dir
  mkdir -p "$2"
  for f in "$1"/*.rs; do
    sed -e '/^use serde::/d' \
        -e 's/Serialize, Deserialize, //' \
        -e 's/, Serialize, Deserialize//' \
        -e '/^[[:space:]]*#\[serde(/d' \
        "$f" > "$2/$(basename "$f")"
  done
}

rustc --edition 2021 -O --crate-type lib --crate-name rand "$STUBS/rand.rs" -o librand.rlib
rustc --edition 2021 -O --crate-type lib --crate-name serde_json "$STUBS/serde_json.rs" -o libserde_json.rlib

strip_serde $R/obs/src obs
rustc --edition 2021 -O --crate-type lib --crate-name edgerep_obs obs/lib.rs -o libedgerep_obs.rlib

strip_serde $R/ec/src ec
rustc --edition 2021 -O --crate-type lib --crate-name edgerep_ec ec/lib.rs \
  -L . --extern edgerep_obs=libedgerep_obs.rlib -o libedgerep_ec.rlib
rustc --edition 2021 -O --test --crate-name edgerep_ec ec/lib.rs \
  -L . --extern edgerep_obs=libedgerep_obs.rlib -o ec_tests
echo EC_BUILD_OK

strip_serde $R/graph/src graph
rustc --edition 2021 -O --crate-type lib --crate-name edgerep_graph graph/lib.rs \
  -L . --extern rand=librand.rlib -o libedgerep_graph.rlib

strip_serde $R/model/src model
rustc --edition 2021 -O --crate-type lib --crate-name edgerep_model model/lib.rs \
  -L . --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_ec=libedgerep_ec.rlib -o libedgerep_model.rlib
rustc --edition 2021 -O --test --crate-name edgerep_model model/lib.rs \
  -L . --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_ec=libedgerep_ec.rlib \
  --extern serde_json=libserde_json.rlib \
  --extern rand=librand.rlib -o model_tests
echo MODEL_BUILD_OK

strip_serde $R/lp/src lp
rustc --edition 2021 -O --crate-type lib --crate-name edgerep_lp lp/lib.rs -o libedgerep_lp.rlib

strip_serde $R/forecast/src forecast
rustc --edition 2021 -O --crate-type lib --crate-name edgerep_forecast forecast/lib.rs \
  -L . --extern edgerep_obs=libedgerep_obs.rlib -o libedgerep_forecast.rlib

strip_serde $R/core/src core
rustc --edition 2021 -O --crate-type lib --crate-name edgerep_core core/lib.rs \
  -L . --extern edgerep_ec=libedgerep_ec.rlib \
  --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_lp=libedgerep_lp.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib -o libedgerep_core.rlib

strip_serde $R/workload/src workload
# The stub rand cannot back-propagate the range item type from the
# surrounding multiplication; pin the literal (no semantic change).
sed -i 's/2_000\.\.200_000/2_000u64..200_000u64/' workload/mobile_trace.rs
rustc --edition 2021 -O --crate-type lib --crate-name edgerep_workload workload/lib.rs \
  -L . --extern rand=librand.rlib \
  --extern edgerep_forecast=libedgerep_forecast.rlib \
  --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib -o libedgerep_workload.rlib

strip_serde $R/shard/src shard
rustc --edition 2021 -O --crate-type lib --crate-name edgerep_shard shard/lib.rs \
  -L . --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_core=libedgerep_core.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib -o libedgerep_shard.rlib
rustc --edition 2021 -O --test --crate-name edgerep_shard shard/lib.rs \
  -L . --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_core=libedgerep_core.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib -o shard_tests
echo SHARD_BUILD_OK

rustc --edition 2021 -O --test --crate-name edgerep_core core/lib.rs \
  -L . --extern edgerep_ec=libedgerep_ec.rlib \
  --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_lp=libedgerep_lp.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib \
  --extern rand=librand.rlib -o core_tests
echo CORE_BUILD_OK

strip_serde $R/testbed/src testbed
# Pin literal range types the stub rand cannot infer from field context.
sed -i 's/k: rng.gen_range(3\.\.10)/k: rng.gen_range(3usize..10)/;
        s/app: rng.gen_range(0\.\.20)/app: rng.gen_range(0u32..20)/;
        s/user: rng.gen_range(0\.\.100)/user: rng.gen_range(0u32..100)/' testbed/analytics.rs
rustc --edition 2021 -O --test --crate-name edgerep_testbed testbed/lib.rs \
  -L . --extern rand=librand.rlib \
  --extern edgerep_ec=libedgerep_ec.rlib \
  --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib \
  --extern edgerep_core=libedgerep_core.rlib \
  --extern edgerep_forecast=libedgerep_forecast.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib -o testbed_tests
echo TESTBED_BUILD_OK

rustc --edition 2021 -O --crate-type lib --crate-name edgerep_testbed testbed/lib.rs \
  -L . --extern rand=librand.rlib \
  --extern edgerep_ec=libedgerep_ec.rlib \
  --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib \
  --extern edgerep_core=libedgerep_core.rlib \
  --extern edgerep_forecast=libedgerep_forecast.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib -o libedgerep_testbed_lib.rlib

strip_serde $R/exp/src exp
strip_serde $R/exp/src/bin exp/bin
rustc --edition 2021 -O --test --crate-name edgerep_exp exp/lib.rs \
  -L . --extern rand=librand.rlib \
  --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib \
  --extern edgerep_core=libedgerep_core.rlib \
  --extern edgerep_forecast=libedgerep_forecast.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib \
  --extern edgerep_lp=libedgerep_lp.rlib \
  --extern edgerep_shard=libedgerep_shard.rlib \
  --extern edgerep_testbed=libedgerep_testbed_lib.rlib -o exp_tests
echo EXP_BUILD_OK

rustc --edition 2021 -O --crate-type lib --crate-name edgerep_exp exp/lib.rs \
  -L . --extern rand=librand.rlib \
  --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib \
  --extern edgerep_core=libedgerep_core.rlib \
  --extern edgerep_forecast=libedgerep_forecast.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib \
  --extern edgerep_lp=libedgerep_lp.rlib \
  --extern edgerep_shard=libedgerep_shard.rlib \
  --extern edgerep_testbed=libedgerep_testbed_lib.rlib -o libedgerep_exp.rlib

# repro: unit tests (usage drift guards) + runnable binary for smokes.
rustc --edition 2021 -O --test --crate-name repro exp/bin/repro.rs \
  -L . --extern edgerep_exp=libedgerep_exp.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib \
  --extern edgerep_testbed=libedgerep_testbed_lib.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib \
  --extern serde_json=libserde_json.rlib -o repro_tests
rustc --edition 2021 -O --crate-name repro exp/bin/repro.rs \
  -L . --extern edgerep_exp=libedgerep_exp.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib \
  --extern edgerep_testbed=libedgerep_testbed_lib.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib \
  --extern serde_json=libserde_json.rlib -o repro_bin
echo REPRO_BUILD_OK

# edgerep CLI: type-check only (json!/to_string_pretty are stubbed).
rustc --edition 2021 -O --test --crate-name edgerep exp/bin/edgerep.rs \
  -L . --extern edgerep_exp=libedgerep_exp.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_core=libedgerep_core.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib \
  --extern edgerep_testbed=libedgerep_testbed_lib.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib \
  --extern edgerep_shard=libedgerep_shard.rlib \
  --extern serde_json=libserde_json.rlib -o edgerep_tests
echo EDGEREP_BUILD_OK

strip_serde $R/bench/src bench_src
strip_serde $R/bench/src/bin bench_src/bin
rustc --edition 2021 -O --test --crate-name edgerep_bench bench_src/lib.rs \
  -L . --extern rand=librand.rlib \
  --extern edgerep_ec=libedgerep_ec.rlib \
  --extern edgerep_graph=libedgerep_graph.rlib \
  --extern edgerep_model=libedgerep_model.rlib \
  --extern edgerep_workload=libedgerep_workload.rlib \
  --extern edgerep_core=libedgerep_core.rlib \
  --extern edgerep_forecast=libedgerep_forecast.rlib \
  --extern edgerep_testbed=libedgerep_testbed_lib.rlib \
  --extern edgerep_exp=libedgerep_exp.rlib \
  --extern edgerep_shard=libedgerep_shard.rlib \
  --extern edgerep_obs=libedgerep_obs.rlib -o bench_tests
echo BENCH_BUILD_OK
echo BUILD_ALL_OK
