#!/bin/bash
# Builds (scripts/standalone/build.sh) and runs every crate's unit-test
# binary under the stub harness. EDGEREP_STUB_HARNESS=1 tells the handful
# of tests that depend on real `rand` streams or real `serde_json` to
# early-return — everything else runs for real.
#
#   scripts/standalone/run.sh                  # build + run all suites
#   WORK=/elsewhere scripts/standalone/run.sh  # custom scratch dir
set -e
here="$(cd "$(dirname "$0")" && pwd)"
WORK=${WORK:-/tmp/edgerep-standalone}
export WORK
bash "$here/build.sh"

cd "$WORK"
export EDGEREP_STUB_HARNESS=1
fail=0
for t in ec model shard core testbed exp repro edgerep bench; do
    echo "== ${t}_tests =="
    "./${t}_tests" || fail=1
done
[ "$fail" -eq 0 ] && echo "standalone: all suites passed" || {
    echo "standalone: FAILURES above" >&2
    exit 1
}
