pub mod rngs {
    pub struct SmallRng(pub u64);
}
pub trait SeedableRng {
    fn seed_from_u64(s: u64) -> Self;
}
impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(s: u64) -> Self {
        Self(s ^ 0x9E3779B97F4A7C15)
    }
}
pub trait Sample {
    fn sample(raw: u64) -> Self;
}
impl Sample for f64 {
    fn sample(raw: u64) -> f64 {
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}
pub trait RangeSample {
    type Out;
    fn pick(self, raw: u64) -> Self::Out;
}
impl RangeSample for std::ops::Range<usize> {
    type Out = usize;
    fn pick(self, raw: u64) -> usize {
        self.start + (raw as usize) % (self.end - self.start)
    }
}
impl RangeSample for std::ops::RangeInclusive<usize> {
    type Out = usize;
    fn pick(self, raw: u64) -> usize {
        self.start() + (raw as usize) % (self.end() - self.start() + 1)
    }
}
pub trait Rng {
    fn next_u64(&mut self) -> u64;
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self.next_u64())
    }
    fn gen_range<R: RangeSample>(&mut self, r: R) -> R::Out {
        r.pick(self.next_u64())
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Sample>::sample(self.next_u64()) < p
    }
}
impl Rng for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl RangeSample for std::ops::Range<f64> {
    type Out = f64;
    fn pick(self, raw: u64) -> f64 {
        self.start + <f64 as Sample>::sample(raw) * (self.end - self.start)
    }
}
macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl RangeSample for std::ops::Range<$t> {
            type Out = $t;
            fn pick(self, raw: u64) -> $t {
                self.start + ((raw % (self.end - self.start) as u64) as $t)
            }
        }
        impl RangeSample for std::ops::RangeInclusive<$t> {
            type Out = $t;
            fn pick(self, raw: u64) -> $t {
                self.start() + ((raw % (self.end() - self.start() + 1) as u64) as $t)
            }
        }
    )*};
}
int_range!(u64, u32, i32, i64);
