#[derive(Debug)]
pub struct Error;
impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error")
    }
}
pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    unimplemented!()
}
pub fn to_string_pretty<T>(_t: &T) -> Result<String, Error> {
    unimplemented!()
}
pub struct Value;
impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{}}")
    }
}
#[macro_export]
macro_rules! json {
    ($($t:tt)*) => {
        $crate::Value
    };
}
pub fn to_string<T>(_t: &T) -> Result<String, Error> {
    unimplemented!()
}
