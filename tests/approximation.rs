//! Approximation-quality guarantees on small instances with a provable
//! optimum: heuristics ≤ OPT ≤ LP relaxation, Appro's dual bound dominates
//! its primal, and the empirical ratio sits far inside the theorem's
//! `max(|Q|·|S|, |V|·|S|/K)` guarantee.

use edgerep_core::appro::Appro;
use edgerep_core::graphpart::GraphPartition;
use edgerep_core::greedy::Greedy;
use edgerep_core::ilp::lp_upper_bound;
use edgerep_core::optimal::{Optimal, OptimalStatus};
use edgerep_core::popularity::Popularity;
use edgerep_core::PlacementAlgorithm;
use edgerep_workload::{generate_instance, WorkloadParams};

fn small_params() -> WorkloadParams {
    WorkloadParams {
        data_centers: 2,
        cloudlets: 4,
        switches: 1,
        dataset_count: (3, 4),
        query_count: (5, 8),
        datasets_per_query: (1, 2),
        ..Default::default()
    }
}

#[test]
fn sandwich_heuristic_opt_lp() {
    for seed in 0..8u64 {
        let inst = generate_instance(&small_params(), seed);
        let (opt_sol, status) = Optimal::default().solve_with_status(&inst);
        assert_eq!(
            status,
            OptimalStatus::Proven,
            "seed {seed} should be small enough"
        );
        opt_sol.validate(&inst).unwrap();
        let opt = opt_sol.admitted_volume(&inst);
        let lp = lp_upper_bound(&inst);
        assert!(
            opt <= lp + 1e-6,
            "seed {seed}: OPT {opt} above LP bound {lp}"
        );

        for alg in [
            &Appro::default().run(&inst).solution,
            &Greedy::general().solve(&inst),
            &GraphPartition::general().solve(&inst),
            &Popularity::general().solve(&inst),
        ] {
            let vol = alg.admitted_volume(&inst);
            assert!(
                vol <= opt + 1e-6,
                "seed {seed}: heuristic volume {vol} beats proven OPT {opt}"
            );
        }
    }
}

#[test]
fn appro_dual_bound_dominates_opt() {
    // The assembled feasible dual is an upper bound on the LP optimum, so
    // in particular on the ILP optimum.
    for seed in 0..8u64 {
        let inst = generate_instance(&small_params(), seed);
        let report = Appro::default().run(&inst);
        let (opt_sol, status) = Optimal::default().solve_with_status(&inst);
        assert_eq!(status, OptimalStatus::Proven);
        let opt = opt_sol.admitted_volume(&inst);
        assert!(
            report.dual_bound >= opt - 1e-6,
            "seed {seed}: dual bound {} below OPT {opt}",
            report.dual_bound
        );
    }
}

#[test]
fn empirical_ratio_far_inside_theorem() {
    // Theorem 1 guarantees Appro-G within max(|Q|·|S|, |V|·|S|/K) of OPT;
    // empirically the gap should be a small constant.
    let mut worst = 1.0f64;
    for seed in 0..8u64 {
        let inst = generate_instance(&small_params(), seed);
        let appro = Appro::default().run(&inst).solution.admitted_volume(&inst);
        let (opt_sol, _) = Optimal::default().solve_with_status(&inst);
        let opt = opt_sol.admitted_volume(&inst);
        if appro > 0.0 {
            worst = worst.max(opt / appro);
        } else {
            assert!(
                opt <= 1e-9,
                "seed {seed}: Appro admitted nothing but OPT = {opt}"
            );
        }
        let theorem = (inst.queries().len() * inst.datasets().len()) as f64;
        assert!(
            worst <= theorem,
            "ratio {worst} outside theorem bound {theorem}"
        );
    }
    assert!(
        worst <= 2.0,
        "empirical approximation ratio degraded badly: {worst}"
    );
}

#[test]
fn appro_dominates_baselines_at_paper_defaults() {
    // The paper's headline: Appro admits several times the volume of
    // Greedy and clearly more than Graph. Checked as a mean over seeds so
    // a single unlucky topology cannot flake the suite.
    let params = WorkloadParams::default();
    let mut appro_total = 0.0;
    let mut greedy_total = 0.0;
    let mut graph_total = 0.0;
    for seed in 0..10u64 {
        let inst = generate_instance(&params, seed);
        appro_total += Appro::default().run(&inst).solution.admitted_volume(&inst);
        greedy_total += Greedy::general().solve(&inst).admitted_volume(&inst);
        graph_total += GraphPartition::general()
            .solve(&inst)
            .admitted_volume(&inst);
    }
    assert!(
        appro_total > 2.0 * greedy_total,
        "Appro {appro_total} should be well over 2x Greedy {greedy_total}"
    );
    assert!(
        appro_total > 1.3 * graph_total,
        "Appro {appro_total} should be well over 1.3x Graph {graph_total}"
    );
}

#[test]
fn lp_bound_caps_every_algorithm_on_midsize_instances() {
    let params = WorkloadParams {
        data_centers: 2,
        cloudlets: 6,
        switches: 1,
        dataset_count: (4, 6),
        query_count: (8, 12),
        datasets_per_query: (1, 3),
        ..Default::default()
    };
    for seed in 0..4u64 {
        let inst = generate_instance(&params, seed);
        let lp = lp_upper_bound(&inst);
        for alg in [
            Appro::default().run(&inst).solution,
            Greedy::general().solve(&inst),
            GraphPartition::general().solve(&inst),
            Popularity::general().solve(&inst),
        ] {
            assert!(
                alg.admitted_volume(&inst) <= lp + 1e-6,
                "seed {seed}: volume above the LP relaxation"
            );
        }
    }
}
