//! Cross-crate determinism: identical seeds produce identical instances,
//! identical placements, identical figures — the property that makes the
//! 15-topology experiment averages reproducible.

use edgerep_core::{simulation_panel, BoxedAlgorithm};
use edgerep_exp::runner::run_simulation_point;
use edgerep_testbed::{build_testbed_instance, run_testbed, SimConfig, TestbedConfig};
use edgerep_workload::{generate_instance, WorkloadParams};

#[test]
fn instances_bitwise_equal_per_seed() {
    let params = WorkloadParams::default();
    for seed in [0u64, 17, 994] {
        let a = generate_instance(&params, seed);
        let b = generate_instance(&params, seed);
        assert_eq!(a.queries(), b.queries());
        assert_eq!(a.datasets(), b.datasets());
        assert_eq!(a.cloud().graph(), b.cloud().graph());
    }
}

#[test]
fn placements_identical_across_runs() {
    let params = WorkloadParams::default();
    let inst = generate_instance(&params, 3);
    for alg in simulation_panel() {
        let s1 = alg.solve(&inst);
        let s2 = alg.solve(&inst);
        assert_eq!(s1, s2, "{} is not deterministic", alg.name());
    }
}

#[test]
fn figure_points_identical_across_processes_worth_of_runs() {
    let params = WorkloadParams {
        query_count: (10, 20),
        ..Default::default()
    };
    let panel: Vec<BoxedAlgorithm> = simulation_panel();
    let a = run_simulation_point(&params, &panel, 4);
    let b = run_simulation_point(&params, &panel, 4);
    assert_eq!(a, b, "parallel runner introduced nondeterminism");
}

#[test]
fn testbed_runs_identical_per_seed() {
    let cfg = TestbedConfig {
        query_count: 15,
        windows: 5,
        trace: edgerep_workload::mobile_trace::TraceConfig {
            users: 150,
            apps: 25,
            days: 7,
            ..Default::default()
        },
        ..Default::default()
    };
    let world = build_testbed_instance(&cfg, 21);
    let sim = SimConfig::default();
    let r1 = run_testbed(&edgerep_core::appro::ApproG::default(), &world, &sim);
    let r2 = run_testbed(&edgerep_core::appro::ApproG::default(), &world, &sim);
    assert_eq!(r1.measured_volume, r2.measured_volume);
    assert_eq!(r1.measured_admitted, r2.measured_admitted);
    assert_eq!(r1.mean_response_s, r2.mean_response_s);
    assert_eq!(r1.answers, r2.answers);
}

#[test]
fn different_seeds_change_something() {
    let params = WorkloadParams::default();
    let a = generate_instance(&params, 1);
    let b = generate_instance(&params, 2);
    assert!(
        a.queries() != b.queries() || a.cloud().graph() != b.cloud().graph(),
        "seeds 1 and 2 produced identical worlds"
    );
}
