//! Cross-crate determinism: identical seeds produce identical instances,
//! identical placements, identical figures — the property that makes the
//! 15-topology experiment averages reproducible.

use edgerep_core::{simulation_panel, BoxedAlgorithm};
use edgerep_exp::runner::{run_simulation_point, run_testbed_point, AlgResult};
use edgerep_exp::Summary;
use edgerep_testbed::{build_testbed_instance, run_testbed, SimConfig, TestbedConfig};
use edgerep_workload::{generate_instance, WorkloadParams};

#[test]
fn instances_bitwise_equal_per_seed() {
    let params = WorkloadParams::default();
    for seed in [0u64, 17, 994] {
        let a = generate_instance(&params, seed);
        let b = generate_instance(&params, seed);
        assert_eq!(a.queries(), b.queries());
        assert_eq!(a.datasets(), b.datasets());
        assert_eq!(a.cloud().graph(), b.cloud().graph());
    }
}

#[test]
fn placements_identical_across_runs() {
    let params = WorkloadParams::default();
    let inst = generate_instance(&params, 3);
    for alg in simulation_panel() {
        let s1 = alg.solve(&inst);
        let s2 = alg.solve(&inst);
        assert_eq!(s1, s2, "{} is not deterministic", alg.name());
    }
}

#[test]
fn figure_points_identical_across_processes_worth_of_runs() {
    let params = WorkloadParams {
        query_count: (10, 20),
        ..Default::default()
    };
    let panel: Vec<BoxedAlgorithm> = simulation_panel();
    let a = run_simulation_point(&params, &panel, 4);
    let b = run_simulation_point(&params, &panel, 4);
    assert_eq!(a, b, "parallel runner introduced nondeterminism");
}

#[test]
fn testbed_runs_identical_per_seed() {
    let cfg = TestbedConfig {
        query_count: 15,
        windows: 5,
        trace: edgerep_workload::mobile_trace::TraceConfig {
            users: 150,
            apps: 25,
            days: 7,
            ..Default::default()
        },
        ..Default::default()
    };
    let world = build_testbed_instance(&cfg, 21);
    let sim = SimConfig::default();
    let r1 = run_testbed(&edgerep_core::appro::ApproG::default(), &world, &sim);
    let r2 = run_testbed(&edgerep_core::appro::ApproG::default(), &world, &sim);
    assert_eq!(r1.measured_volume, r2.measured_volume);
    assert_eq!(r1.measured_admitted, r2.measured_admitted);
    assert_eq!(r1.mean_response_s, r2.mean_response_s);
    assert_eq!(r1.answers, r2.answers);
}

/// Folds per-seed `(volume, throughput)` cells into per-algorithm
/// summaries exactly the way the pre-flatten sequential runner did:
/// seed-major traversal, `Summary::of` over the seed axis.
fn sequential_panel(names: &[&str], per_seed: &[Vec<(f64, f64)>]) -> Vec<AlgResult> {
    names
        .iter()
        .enumerate()
        .map(|(ai, name)| AlgResult {
            name: (*name).to_owned(),
            volume: Summary::of(&per_seed.iter().map(|row| row[ai].0).collect::<Vec<_>>()),
            throughput: Summary::of(&per_seed.iter().map(|row| row[ai].1).collect::<Vec<_>>()),
        })
        .collect()
}

#[test]
fn flattened_simulation_schedule_matches_sequential_path() {
    // The 2-D seed × algorithm scheduler must be invisible in the output:
    // byte-identical AlgResults to the plain nested loop it replaced.
    let params = WorkloadParams {
        query_count: (10, 20),
        ..Default::default()
    };
    let panel: Vec<BoxedAlgorithm> = simulation_panel();
    let flattened = run_simulation_point(&params, &panel, 4);
    let per_seed: Vec<Vec<(f64, f64)>> = (0..4u64)
        .map(|seed| {
            let inst = generate_instance(&params, seed);
            panel
                .iter()
                .map(|alg| {
                    let sol = alg.solve(&inst);
                    (sol.admitted_volume(&inst), sol.throughput(&inst))
                })
                .collect()
        })
        .collect();
    let names: Vec<&str> = panel.iter().map(|a| a.name()).collect();
    assert_eq!(flattened, sequential_panel(&names, &per_seed));
}

#[test]
fn flattened_testbed_schedule_matches_sequential_path() {
    let cfg = TestbedConfig {
        query_count: 10,
        windows: 4,
        trace: edgerep_workload::mobile_trace::TraceConfig {
            users: 100,
            apps: 20,
            days: 5,
            ..Default::default()
        },
        ..Default::default()
    };
    let sim = SimConfig::default();
    let panel: Vec<BoxedAlgorithm> = vec![
        Box::new(edgerep_core::appro::ApproG::default()),
        Box::new(edgerep_core::popularity::Popularity::general()),
    ];
    let flattened = run_testbed_point(&cfg, &panel, 3, &sim);
    let per_seed: Vec<Vec<(f64, f64)>> = (0..3u64)
        .map(|seed| {
            let world = build_testbed_instance(&cfg, seed);
            let seeded = SimConfig { seed, ..sim };
            panel
                .iter()
                .map(|alg| {
                    let report = run_testbed(alg.as_ref(), &world, &seeded);
                    (report.measured_volume, report.measured_throughput)
                })
                .collect()
        })
        .collect();
    let names: Vec<&str> = panel.iter().map(|a| a.name()).collect();
    assert_eq!(flattened, sequential_panel(&names, &per_seed));
}

#[test]
fn different_seeds_change_something() {
    let params = WorkloadParams::default();
    let a = generate_instance(&params, 1);
    let b = generate_instance(&params, 2);
    assert!(
        a.queries() != b.queries() || a.cloud().graph() != b.cloud().graph(),
        "seeds 1 and 2 produced identical worlds"
    );
}

#[test]
fn rolling_policies_identical_per_seed() {
    use edgerep_forecast::ForecasterKind;
    use edgerep_testbed::rolling::{run_rolling, ReplanPolicy, RollingConfig};

    let cfg = RollingConfig {
        testbed: TestbedConfig {
            query_count: 20,
            windows: 5,
            trace: edgerep_workload::mobile_trace::TraceConfig {
                users: 100,
                apps: 20,
                days: 5,
                ..Default::default()
            },
            ..Default::default()
        },
        epochs: 5,
        seed: 7,
        ..Default::default()
    };
    let alg = edgerep_core::appro::ApproG::default();
    for policy in [
        ReplanPolicy::Static,
        ReplanPolicy::Periodic,
        ReplanPolicy::Predictive(ForecasterKind::SeasonalNaive { period: 4 }),
    ] {
        let a = run_rolling(&alg, &cfg, policy);
        let b = run_rolling(&alg, &cfg, policy);
        assert_eq!(a, b, "{policy:?} rolling run is not deterministic");
        assert_eq!(a.per_epoch.len(), 5);
    }
}
