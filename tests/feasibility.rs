//! Cross-crate feasibility: every algorithm, on any generated instance,
//! returns a solution satisfying every ILP constraint.

use edgerep_core::{
    appro::{Appro, ApproConfig, QueryOrder},
    graphpart::GraphPartition,
    greedy::Greedy,
    popularity::Popularity,
    BoxedAlgorithm,
};
use edgerep_model::Solution;
use edgerep_workload::{generate_instance, WorkloadParams};
use proptest::prelude::*;

fn full_panel() -> Vec<BoxedAlgorithm> {
    vec![
        Box::new(edgerep_core::appro::ApproG::default()),
        Box::new(Greedy::general()),
        Box::new(GraphPartition::general()),
        Box::new(Popularity::general()),
    ]
}

/// Checks structural invariants beyond `validate`.
fn check_solution(inst: &edgerep_model::Instance, sol: &Solution, who: &str) {
    sol.validate(inst)
        .unwrap_or_else(|e| panic!("{who}: infeasible: {e:?}"));
    // Admitted volume is consistent with per-query sums.
    let manual: f64 = sol
        .admitted_queries()
        .map(|q| inst.demanded_volume(q))
        .sum();
    assert!((manual - sol.admitted_volume(inst)).abs() < 1e-9);
    // Throughput within [0, 1].
    let t = sol.throughput(inst);
    assert!((0.0..=1.0).contains(&t), "{who}: throughput {t}");
    // Node loads never negative.
    assert!(sol.node_loads(inst).iter().all(|&l| l >= -1e-12));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All algorithms stay feasible over the whole configuration space the
    /// figures sweep (network size × F × K × seed).
    #[test]
    fn all_algorithms_feasible(
        seed in 0u64..5000,
        n in 8usize..48,
        f in 1usize..5,
        k in 1usize..5,
    ) {
        let params = WorkloadParams {
            dataset_count: (3, 8),
            query_count: (5, 25),
            ..Default::default()
        }
        .with_network_size(n)
        .with_max_datasets_per_query(f)
        .with_max_replicas(k);
        let inst = generate_instance(&params, seed);
        for alg in full_panel() {
            let sol = alg.solve(&inst);
            check_solution(&inst, &sol, alg.name());
        }
    }

    /// Every Appro configuration (orders, price bases, weights) stays
    /// feasible and below its own dual bound.
    #[test]
    fn appro_configs_feasible_and_dual_bounded(
        seed in 0u64..5000,
        order_idx in 0usize..4,
        mu in prop::option::of(1.5f64..200.0),
        delay_w in 0.0f64..2.0,
        replica_w in 0.0f64..2.0,
    ) {
        let order = [
            QueryOrder::GlobalCheapestFirst,
            QueryOrder::Input,
            QueryOrder::VolumeDesc,
            QueryOrder::DeadlineAsc,
        ][order_idx];
        let params = WorkloadParams {
            data_centers: 2,
            cloudlets: 8,
            switches: 1,
            dataset_count: (3, 6),
            query_count: (5, 15),
            ..Default::default()
        };
        let inst = generate_instance(&params, seed);
        let cfg = ApproConfig { price_mu: mu, order, delay_weight: delay_w, replica_weight: replica_w };
        let report = Appro::with_config(cfg).run(&inst);
        check_solution(&inst, &report.solution, "Appro(custom)");
        prop_assert!(
            report.dual_bound >= report.solution.admitted_volume(&inst) - 1e-6,
            "dual bound {} below primal {}",
            report.dual_bound,
            report.solution.admitted_volume(&inst)
        );
        prop_assert!(report.theta.iter().all(|&t| (0.0..=1.0 + 1e-9).contains(&t)));
    }

    /// Volume never exceeds the instance's total demanded volume, and the
    /// replica budget holds for every dataset.
    #[test]
    fn global_bounds_hold(seed in 0u64..5000) {
        let params = WorkloadParams::default();
        let inst = generate_instance(&params, seed);
        for alg in full_panel() {
            let sol = alg.solve(&inst);
            prop_assert!(sol.admitted_volume(&inst) <= inst.total_demanded_volume() + 1e-9);
            for d in inst.dataset_ids() {
                prop_assert!(sol.replica_count(d) <= inst.max_replicas());
            }
        }
    }
}

#[test]
fn special_panel_feasible_on_single_dataset_instances() {
    let params = WorkloadParams::default().with_max_datasets_per_query(1);
    for seed in 0..8 {
        let inst = generate_instance(&params, seed);
        for alg in edgerep_core::special_panel() {
            let sol = alg.solve(&inst);
            check_solution(&inst, &sol, alg.name());
        }
    }
}
