//! Reproduction-contract tests: the *shapes* the paper reports must hold
//! on reduced-seed regenerations of every figure — who wins, roughly by
//! how much, and the monotone trends in `F` and `K`.

use edgerep_exp::figures;

const SEEDS: usize = 8;

fn mean_volume(row: &edgerep_exp::FigureRow, alg: usize) -> f64 {
    row.results[alg].volume.mean
}

fn mean_throughput(row: &edgerep_exp::FigureRow, alg: usize) -> f64 {
    row.results[alg].throughput.mean
}

#[test]
fn fig2_appro_s_dominates_both_baselines() {
    let fig = figures::fig2(SEEDS);
    for row in &fig.rows {
        let (appro, greedy, graph) = (
            mean_volume(row, 0),
            mean_volume(row, 1),
            mean_volume(row, 2),
        );
        // Paper: ~4x Greedy-S, ~2x Graph-S; accept reduced factors on a
        // reduced-seed regeneration.
        assert!(
            appro > 2.0 * greedy,
            "n={}: Appro-S {appro} not ≫ Greedy-S {greedy}",
            row.x
        );
        assert!(
            appro > 1.2 * graph,
            "n={}: Appro-S {appro} not > Graph-S {graph}",
            row.x
        );
        assert!(mean_throughput(row, 0) > mean_throughput(row, 1));
        assert!(mean_throughput(row, 0) > mean_throughput(row, 2));
    }
}

#[test]
fn fig3_appro_g_dominates_both_baselines() {
    let fig = figures::fig3(SEEDS);
    for row in &fig.rows {
        let (appro, greedy, graph) = (
            mean_volume(row, 0),
            mean_volume(row, 1),
            mean_volume(row, 2),
        );
        assert!(
            appro > 2.0 * greedy,
            "n={}: {appro} vs greedy {greedy}",
            row.x
        );
        assert!(appro > 1.2 * graph, "n={}: {appro} vs graph {graph}", row.x);
    }
}

#[test]
fn fig4_throughput_declines_with_f() {
    let fig = figures::fig4(SEEDS);
    // Paper: "the system throughput of three algorithms decreases with the
    // growth of F". Checked end-to-end (F=1 vs F=6) per algorithm, which
    // is robust to small non-monotonic wiggles at 5 seeds.
    for alg in 0..3 {
        let first = mean_throughput(&fig.rows[0], alg);
        let last = mean_throughput(&fig.rows[fig.rows.len() - 1], alg);
        assert!(
            last < first,
            "algorithm {alg}: throughput did not decline ({first} -> {last})"
        );
    }
    // Volume grows from F=1 to its peak (paper: rises until F≈5).
    let v1 = mean_volume(&fig.rows[0], 0);
    let peak = fig
        .rows
        .iter()
        .map(|r| mean_volume(r, 0))
        .fold(0.0, f64::max);
    assert!(peak > v1, "Appro-G volume should grow with F somewhere");
}

#[test]
fn fig5_both_metrics_grow_with_k() {
    let fig = figures::fig5(SEEDS);
    for alg in 0..3 {
        let v_first = mean_volume(&fig.rows[0], alg);
        let v_last = mean_volume(&fig.rows[fig.rows.len() - 1], alg);
        assert!(
            v_last > v_first,
            "algorithm {alg}: volume did not grow in K ({v_first} -> {v_last})"
        );
        let t_first = mean_throughput(&fig.rows[0], alg);
        let t_last = mean_throughput(&fig.rows[fig.rows.len() - 1], alg);
        assert!(
            t_last > t_first,
            "algorithm {alg}: throughput did not grow in K"
        );
    }
    // And Appro stays on top at every K.
    for row in &fig.rows {
        assert!(mean_volume(row, 0) > mean_volume(row, 1));
        assert!(mean_volume(row, 0) > mean_volume(row, 2));
    }
}

#[test]
fn fig7_appro_beats_popularity_and_throughput_declines() {
    let fig = figures::fig7(SEEDS);
    for row in &fig.rows {
        assert!(
            mean_volume(row, 0) > mean_volume(row, 1),
            "F={}: Appro below Popularity",
            row.x
        );
    }
    let first = mean_throughput(&fig.rows[0], 0);
    let last = mean_throughput(&fig.rows[fig.rows.len() - 1], 0);
    assert!(last < first, "testbed throughput should decline in F");
}

#[test]
fn fig8_metrics_grow_with_k_and_appro_wins() {
    let fig = figures::fig8(SEEDS);
    for alg in 0..2 {
        let v_first = mean_volume(&fig.rows[0], alg);
        let v_last = mean_volume(&fig.rows[fig.rows.len() - 1], alg);
        assert!(v_last > v_first, "algorithm {alg}: volume flat in K");
    }
    for row in &fig.rows {
        assert!(
            mean_volume(row, 0) >= mean_volume(row, 1) * 0.95,
            "K={}: Appro-G {} clearly below Popularity-G {}",
            row.x,
            mean_volume(row, 0),
            mean_volume(row, 1)
        );
        assert!(mean_throughput(row, 0) > mean_throughput(row, 1));
    }
}
