//! End-to-end testbed integration: controller → replication → DES query
//! phase → analytics answers, checked against independent recomputation.

use edgerep_core::appro::ApproG;
use edgerep_core::popularity::Popularity;
use edgerep_core::PlacementAlgorithm;
use edgerep_testbed::analytics::{evaluate, merge};
use edgerep_testbed::{
    build_testbed_instance, run_testbed, ConsistencyConfig, SimConfig, TestbedConfig,
};

fn world(seed: u64) -> edgerep_testbed::TestbedWorld {
    let cfg = TestbedConfig {
        query_count: 25,
        windows: 8,
        trace: edgerep_workload::mobile_trace::TraceConfig {
            users: 300,
            apps: 40,
            days: 14,
            ..Default::default()
        },
        ..Default::default()
    };
    build_testbed_instance(&cfg, seed)
}

#[test]
fn answers_match_direct_evaluation() {
    let world = world(5);
    let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
    assert!(!report.answers.is_empty(), "something must complete");
    for (q, answer) in &report.answers {
        // Recompute the expected answer straight from the records the
        // query's demands cover — independent of the simulator.
        let kind = world.query_kinds[q.index()];
        let partials: Vec<_> = world
            .instance
            .query(*q)
            .demands
            .iter()
            .map(|dem| evaluate(kind, &world.records[dem.dataset.index()]))
            .collect();
        let expected = merge(partials).expect("non-empty demands");
        assert_eq!(answer, &expected, "answer mismatch for {q}");
    }
}

#[test]
fn accounting_invariants() {
    let world = world(6);
    for alg in [
        &ApproG::default() as &dyn PlacementAlgorithm,
        &Popularity::general(),
    ] {
        let report = run_testbed(alg, &world, &SimConfig::default());
        assert!(report.measured_admitted <= report.planned_admitted);
        assert!(report.measured_volume <= report.planned_volume + 1e-9);
        assert!(report.planned_admitted <= report.total_queries);
        assert_eq!(report.total_queries, 25);
        assert!(report.mean_response_s >= 0.0);
        assert!(report.max_response_s >= report.mean_response_s);
        assert!(report.plan.validate(&world.instance).is_ok());
        // Planned metrics agree with the plan itself.
        assert!(
            (report.planned_volume - report.plan.admitted_volume(&world.instance)).abs() < 1e-9
        );
    }
}

#[test]
fn measured_latency_respects_static_lower_bound() {
    // The DES adds queueing on top of the static model, so each completed
    // query's measured response is at least its static (uncontended)
    // delay under the same assignment.
    let world = world(7);
    let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
    for (q, _) in &report.answers {
        let nodes = report
            .plan
            .assignment_of(*q)
            .expect("completed => admitted");
        let static_delay = edgerep_model::delay::query_delay(&world.instance, *q, nodes);
        // mean_response covers all queries; per-query timing isn't in the
        // report, so check the aggregate: worst-case must be at least the
        // largest static delay among completed queries.
        assert!(report.max_response_s >= static_delay - 1e-6);
    }
}

#[test]
fn consistency_traffic_scales_with_growth() {
    let world = world(8);
    let slow = SimConfig {
        arrival_rate_per_s: 0.05,
        consistency: Some(ConsistencyConfig {
            growth_gb_per_hour: 5.0,
            threshold: 0.05,
            check_interval_s: 20.0,
        }),
        seed: 8,
        ..Default::default()
    };
    let fast = SimConfig {
        consistency: Some(ConsistencyConfig {
            growth_gb_per_hour: 50.0,
            ..slow.consistency.unwrap()
        }),
        ..slow
    };
    let r_slow = run_testbed(&ApproG::default(), &world, &slow);
    let r_fast = run_testbed(&ApproG::default(), &world, &fast);
    assert!(
        r_fast.consistency_gb >= r_slow.consistency_gb,
        "10x growth must not reduce consistency traffic ({} vs {})",
        r_fast.consistency_gb,
        r_slow.consistency_gb
    );
}

#[test]
fn higher_arrival_rate_never_improves_outcomes() {
    // More temporal overlap → more queueing → no more met deadlines.
    let world = world(9);
    let calm = SimConfig {
        arrival_rate_per_s: 0.05,
        ..Default::default()
    };
    let storm = SimConfig {
        arrival_rate_per_s: 50.0,
        ..Default::default()
    };
    let r_calm = run_testbed(&ApproG::default(), &world, &calm);
    let r_storm = run_testbed(&ApproG::default(), &world, &storm);
    assert!(
        r_storm.measured_admitted <= r_calm.measured_admitted,
        "a query storm should not beat a calm arrival pattern ({} vs {})",
        r_storm.measured_admitted,
        r_calm.measured_admitted
    );
}
